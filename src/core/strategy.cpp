#include "src/core/strategy.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "src/core/psp_div.hpp"
#include "src/core/psp_gf.hpp"
#include "src/core/psp_ud.hpp"
#include "src/core/ssp_ed.hpp"
#include "src/core/ssp_eqf.hpp"
#include "src/core/ssp_eqs.hpp"
#include "src/core/ssp_ud.hpp"
#include "src/util/env.hpp"

namespace sda::core {

Time SspContext::remaining_pex_total() const noexcept {
  return std::accumulate(remaining_pex.begin(), remaining_pex.end(), Time{0});
}

Time SspContext::remaining_slack() const noexcept {
  return deadline - now - remaining_pex_total();
}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Parses the parameter suffix of "div-2.5" / "gf-0.001"; nullopt-style:
/// returns false when the text is not a clean number.
bool parse_param(const std::string& text, double* out) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(text, &used);
    if (used != text.size()) return false;
    *out = parsed;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// One registry per strategy problem (PSP / SSP); lookup order is
/// registration order, exact entries before prefix families for the same
/// spelling because exact matching is tried first.
template <typename Strategy, typename Factory>
class Registry {
 public:
  void add(const std::string& name, Factory factory, NameMatch match,
           const std::string& display, const char* problem) {
    const std::string key = lower(name);
    if (key.empty()) {
      throw std::invalid_argument(std::string(problem) +
                                  " registry: empty strategy name");
    }
    for (const Entry& e : entries_) {
      if (e.key == key) {
        throw std::invalid_argument(std::string(problem) + " strategy '" +
                                    name + "' is already registered");
      }
    }
    entries_.push_back(Entry{key, display.empty() ? key : display, match,
                             std::move(factory)});
  }

  // Non-const: UniqueFn's call operator is non-const (it may own mutable
  // state), so lookups need mutable access to the stored factories.
  std::unique_ptr<Strategy> make(const std::string& name,
                                 const char* problem) {
    const std::string n = lower(name);
    for (Entry& e : entries_) {
      if (e.match == NameMatch::kExact && e.key == n) {
        if (auto made = e.factory(n)) return made;
      }
    }
    for (Entry& e : entries_) {
      if (e.match == NameMatch::kPrefix && n.rfind(e.key, 0) == 0 &&
          n.size() > e.key.size()) {
        if (auto made = e.factory(n)) return made;
      }
    }
    std::ostringstream os;
    os << "unknown " << problem << " strategy: " << name << " (registered:";
    for (const Entry& e : entries_) os << ' ' << e.display;
    os << ')';
    std::vector<std::string> exact_names;
    for (const Entry& e : entries_) {
      if (e.match == NameMatch::kExact) exact_names.push_back(e.key);
    }
    const std::string suggestion = util::closest_match(n, exact_names);
    if (!suggestion.empty()) os << " — did you mean '" << suggestion << "'?";
    throw std::invalid_argument(os.str());
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.display);
    return out;
  }

 private:
  struct Entry {
    std::string key;      ///< lowercased name or prefix
    std::string display;  ///< what list_strategies shows
    NameMatch match;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

using PspRegistry = Registry<PspStrategy, PspFactory>;
using SspRegistry = Registry<SspStrategy, SspFactory>;

/// Built-ins are seeded through the same add() path as user strategies the
/// first time any registry accessor runs.
PspRegistry& psp_registry() {
  static PspRegistry reg = [] {
    PspRegistry r;
    r.add("ud",
          [](const std::string&) -> std::unique_ptr<PspStrategy> {
            return std::make_unique<PspUltimateDeadline>();
          },
          NameMatch::kExact, "ud", "PSP");
    r.add("div-",
          [](const std::string& full) -> std::unique_ptr<PspStrategy> {
            double x = 0.0;
            if (!parse_param(full.substr(4), &x)) return nullptr;
            return std::make_unique<PspDiv>(x);
          },
          NameMatch::kPrefix, "div-<x>", "PSP");
    r.add("gf",
          [](const std::string&) -> std::unique_ptr<PspStrategy> {
            return std::make_unique<PspGlobalsFirst>();
          },
          NameMatch::kExact, "gf", "PSP");
    r.add("gf-",
          [](const std::string& full) -> std::unique_ptr<PspStrategy> {
            double delta = 0.0;
            if (!parse_param(full.substr(3), &delta)) return nullptr;
            return std::make_unique<PspGlobalsFirst>(delta);
          },
          NameMatch::kPrefix, "gf-<delta>", "PSP");
    return r;
  }();
  return reg;
}

SspRegistry& ssp_registry() {
  static SspRegistry reg = [] {
    SspRegistry r;
    auto exact = [&r](const char* name, auto make_fn) {
      r.add(name,
            [make_fn](const std::string&) -> std::unique_ptr<SspStrategy> {
              return make_fn();
            },
            NameMatch::kExact, name, "SSP");
    };
    exact("ud", [] { return std::make_unique<SspUltimateDeadline>(); });
    exact("ed", [] { return std::make_unique<SspEffectiveDeadline>(); });
    exact("eqs", [] { return std::make_unique<SspEqualSlack>(); });
    exact("eqf", [] { return std::make_unique<SspEqualFlexibility>(); });
    return r;
  }();
  return reg;
}

}  // namespace

void register_psp(const std::string& name, PspFactory factory,
                  NameMatch match, const std::string& display) {
  psp_registry().add(name, std::move(factory), match, display, "PSP");
}

void register_ssp(const std::string& name, SspFactory factory,
                  NameMatch match, const std::string& display) {
  ssp_registry().add(name, std::move(factory), match, display, "SSP");
}

std::vector<std::string> list_psp_strategies() {
  return psp_registry().names();
}

std::vector<std::string> list_ssp_strategies() {
  return ssp_registry().names();
}

std::unique_ptr<PspStrategy> make_psp_strategy(const std::string& name) {
  return psp_registry().make(name, "PSP");
}

std::unique_ptr<SspStrategy> make_ssp_strategy(const std::string& name) {
  return ssp_registry().make(name, "SSP");
}

}  // namespace sda::core
