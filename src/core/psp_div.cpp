#include "src/core/psp_div.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sda::core {

PspDiv::PspDiv(double x) : x_(x) {
  if (!(x > 0.0)) throw std::invalid_argument("DIV-x requires x > 0");
}

Time PspDiv::assign(const PspContext& ctx, int /*branch*/,
                    Time /*branch_pex*/) const {
  const Time allowance = ctx.deadline - ctx.now;
  return ctx.now + allowance / (static_cast<double>(ctx.branch_count) * x_);
}

std::string PspDiv::name() const {
  std::ostringstream os;
  os << "DIV-";
  if (x_ == std::floor(x_)) {
    os << static_cast<long long>(x_);
  } else {
    os << x_;
  }
  return os.str();
}

}  // namespace sda::core
