// Analytic miss-probability prediction for planned deadline assignments.
//
// The paper's §4 motivates PSP with back-of-envelope arithmetic
// (1-(1-p)^n).  This module turns that into a usable planning tool: given a
// task tree, a deadline, a strategy pair, and a simple per-node congestion
// model (M/M/1 with utilization rho), it estimates the probability that the
// global task meets its deadline *before submitting anything*:
//
//   * each leaf's window is taken from the offline SDA plan;
//   * P[a leaf finishes within window w] ~ 1 - exp(-mu (1-rho) w), the
//     M/M/1 sojourn tail;
//   * parallel branches multiply (independence — the same approximation
//     the paper's footnote 5 acknowledges);
//   * serial stages multiply too: the plan assumes each stage makes its
//     own window.
//
// Accuracy: this ignores EDF reordering, deadline correlation, and the
// difference between virtual windows and actual response budgets, so treat
// the output as an order-of-magnitude estimate.  The validation bench
// (bench/validation_predictor) quantifies the gap against simulation: the
// *shape* across load and n tracks well.
#pragma once

#include <vector>

#include "src/core/sda.hpp"

namespace sda::core {

/// Per-node congestion model for prediction.
struct NodeModel {
  double rho = 0.5;  ///< utilization (normalized load), in [0, 1)
  double mu = 1.0;   ///< service rate
};

/// One leaf's contribution to the estimate.
struct LeafEstimate {
  const task::TreeNode* leaf = nullptr;
  double window = 0.0;   ///< planned response budget (deadline - dispatch)
  double on_time = 0.0;  ///< P[response <= window] under the node model
};

/// Full prediction result.
struct MissPrediction {
  double on_time_probability = 0.0;  ///< product over leaves
  double miss_probability = 0.0;     ///< 1 - on_time_probability
  std::vector<LeafEstimate> leaves;  ///< per-leaf breakdown (DFS order)
};

/// Probability one task with response budget @p window completes in time at
/// a node described by @p model (M/M/1 sojourn tail). Windows <= 0 give 0.
double leaf_on_time_probability(double window, const NodeModel& model);

/// Estimates the miss probability of @p tree with end-to-end @p deadline
/// when assigned by (@p psp, @p ssp) and executed on nodes all described by
/// @p model.  Uses the optimistic offline plan for windows.
MissPrediction predict_miss(const task::TreeNode& tree, double arrival,
                            double deadline, const PspStrategy& psp,
                            const SspStrategy& ssp, const NodeModel& model);

}  // namespace sda::core
