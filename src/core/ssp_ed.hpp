// Effective Deadline (ED) for serial stages (from the companion paper [6]).
//
//   ED:  dl(T_i) = dl(T) - sum_{j>i} pex(T_j)
//
// Reserves exactly the predicted execution time of all downstream stages
// and leaves the entire slack with the current stage.  Slack is therefore
// consumed greedily by early stages — the weakness EQS/EQF address.
#pragma once

#include "src/core/strategy.hpp"

namespace sda::core {

class SspEffectiveDeadline final : public SspStrategy {
 public:
  Time assign(const SspContext& ctx) const override;
  std::string name() const override { return "ED"; }
};

}  // namespace sda::core
