// Ultimate Deadline (UD) for serial stages.
//
//   UD:  dl(T_i) = dl(T)
//
// Every stage sees the end-to-end deadline, so early stages appear to have
// enormous slack and run at unrealistically low EDF priority (paper §8).
#pragma once

#include "src/core/strategy.hpp"

namespace sda::core {

class SspUltimateDeadline final : public SspStrategy {
 public:
  Time assign(const SspContext& ctx) const override;
  std::string name() const override { return "UD"; }
};

}  // namespace sda::core
