// Real-time attributes of a task (paper Section 3.1).
//
// Every task X carries:  ar(X) arrival time, dl(X) deadline, sl(X) slack,
// ex(X) real execution time, pex(X) predicted execution time, related by
// dl(X) = ar(X) + ex(X) + sl(X).
//
// Deadline-assignment strategies never see ex(X); schedulers never see
// pex(X).  The scheduler additionally sees a *virtual* deadline, which is
// what the SDA strategies manipulate; the *real* deadline is what miss
// statistics are measured against.
#pragma once

#include "src/sim/event_queue.hpp"

namespace sda::task {

using sim::Time;

struct Attributes {
  Time arrival = 0.0;           ///< ar(X): submission time
  Time real_deadline = 0.0;     ///< dl(X): end-to-end deadline
  Time virtual_deadline = 0.0;  ///< deadline presented to the scheduler
  Time exec_time = 0.0;         ///< ex(X): actual service demand
  Time pred_exec = 0.0;         ///< pex(X): estimate available to strategies

  /// sl(X) = dl(X) - ar(X) - ex(X).
  Time slack() const noexcept { return real_deadline - arrival - exec_time; }

  /// Slack as the scheduler perceives it (against the virtual deadline).
  Time virtual_slack() const noexcept {
    return virtual_deadline - arrival - exec_time;
  }

  /// True when the attribute relation dl = ar + ex + sl holds and fields are
  /// physically sensible (non-negative execution time).
  bool consistent() const noexcept {
    return exec_time >= 0.0 && pred_exec >= 0.0;
  }
};

}  // namespace sda::task
