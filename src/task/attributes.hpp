// Real-time attributes of a task (paper Section 3.1).
//
// Every task X carries:  ar(X) arrival time, dl(X) deadline, sl(X) slack,
// ex(X) real execution time, pex(X) predicted execution time, related by
// dl(X) = ar(X) + ex(X) + sl(X).
//
// Deadline-assignment strategies never see ex(X); schedulers never see
// pex(X).  The scheduler additionally sees a *virtual* deadline, which is
// what the SDA strategies manipulate; the *real* deadline is what miss
// statistics are measured against.
#pragma once

#include <cstdint>

#include "src/sim/event_queue.hpp"
#include "src/util/arena.hpp"

namespace sda::task {

using sim::Time;

struct TreeNode;  // tree.hpp; FlatTree only stores pointers

struct Attributes {
  Time arrival = 0.0;           ///< ar(X): submission time
  Time real_deadline = 0.0;     ///< dl(X): end-to-end deadline
  Time virtual_deadline = 0.0;  ///< deadline presented to the scheduler
  Time exec_time = 0.0;         ///< ex(X): actual service demand
  Time pred_exec = 0.0;         ///< pex(X): estimate available to strategies

  /// sl(X) = dl(X) - ar(X) - ex(X).
  Time slack() const noexcept { return real_deadline - arrival - exec_time; }

  /// Slack as the scheduler perceives it (against the virtual deadline).
  Time virtual_slack() const noexcept {
    return virtual_deadline - arrival - exec_time;
  }

  /// True when the attribute relation dl = ar + ex + sl holds and fields are
  /// physically sensible (non-negative execution time).
  bool consistent() const noexcept {
    return exec_time >= 0.0 && pred_exec >= 0.0;
  }
};

/// Structure-of-arrays view of one serial-parallel tree, indexed by a dense
/// DFS-preorder slot id (root = slot 0).  build() stamps TreeNode::slot and
/// precomputes everything the plan walks and the on-line SDA dispatcher
/// touch per node — parent links, child lists, and the per-subtree
/// predicted critical path — into contiguous arrays, so those hot paths
/// walk flat memory instead of chasing TreePtr children and hashing node
/// pointers.
///
/// All arrays live in a private bump arena; build() resets and refills it,
/// so a FlatTree reused across runs (the process manager recycles them)
/// reaches a steady state of zero allocations.
///
/// Floating-point note: cp_pex / total_ex / total_pex are accumulated in
/// exactly the operation order of the recursive tree.hpp helpers, so the
/// values are bit-identical to critical_path_pex() / total_ex() /
/// total_pex() — run fingerprints cannot tell the two code paths apart.
class FlatTree {
 public:
  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  FlatTree() = default;
  FlatTree(const FlatTree&) = delete;
  FlatTree& operator=(const FlatTree&) = delete;

  /// Rebuilds the view over @p root (which must stay alive and structurally
  /// unchanged while this FlatTree is in use) and stamps each TreeNode's
  /// `slot` with its DFS-preorder index.
  void build(const TreeNode& root);

  /// Number of nodes; 0 until build() has run.
  std::uint32_t size() const noexcept { return count_; }

  const TreeNode& node(std::uint32_t s) const noexcept { return *node_[s]; }
  std::uint32_t parent(std::uint32_t s) const noexcept { return parent_[s]; }
  /// Child index of @p s within its parent's child list.
  std::uint32_t index_in_parent(std::uint32_t s) const noexcept {
    return index_in_parent_[s];
  }
  bool is_leaf(std::uint32_t s) const noexcept { return kind_[s] == 0; }
  bool is_serial(std::uint32_t s) const noexcept { return kind_[s] == 1; }
  bool is_parallel(std::uint32_t s) const noexcept { return kind_[s] == 2; }

  /// Predicted critical-path demand of the subtree rooted at @p s
  /// (== task::critical_path_pex(node(s)), precomputed).
  Time cp_pex(std::uint32_t s) const noexcept { return cp_pex_[s]; }

  std::uint32_t child_count(std::uint32_t s) const noexcept {
    return child_cnt_[s];
  }
  std::uint32_t child(std::uint32_t s, std::uint32_t i) const noexcept {
    return children_[child_off_[s] + i];
  }
  /// Contiguous cp_pex values of @p s's children in child order — the
  /// remaining_pex slice a serial stage assignment needs, with no per-call
  /// recomputation: stage i's remainder is [slice + i, slice + count).
  const Time* child_cp_pex(std::uint32_t s) const noexcept {
    return child_cp_pex_ + child_off_[s];
  }

  // Whole-tree aggregates (bit-identical to the recursive helpers).
  Time total_ex() const noexcept { return total_ex_; }
  Time total_pex() const noexcept { return total_pex_; }
  int leaf_count() const noexcept { return leaf_count_; }

  std::size_t arena_bytes() const noexcept { return arena_.bytes_reserved(); }

 private:
  /// Fills the arrays for @p t (preorder slot assignment, postorder
  /// aggregates); returns the subtree's (cp_pex, total_ex, total_pex).
  struct SubtreeAgg {
    Time cp_pex;
    Time tot_ex;
    Time tot_pex;
  };
  SubtreeAgg fill(const TreeNode& t, std::uint32_t parent,
                  std::uint32_t index_in_parent);

  util::Arena arena_;
  const TreeNode** node_ = nullptr;
  std::uint32_t* parent_ = nullptr;
  std::uint32_t* index_in_parent_ = nullptr;
  std::uint8_t* kind_ = nullptr;  ///< 0 leaf, 1 serial, 2 parallel
  Time* cp_pex_ = nullptr;
  std::uint32_t* child_off_ = nullptr;
  std::uint32_t* child_cnt_ = nullptr;
  std::uint32_t* children_ = nullptr;
  Time* child_cp_pex_ = nullptr;
  std::uint32_t count_ = 0;
  std::uint32_t next_slot_ = 0;
  std::uint32_t child_cursor_ = 0;
  Time total_ex_ = 0.0;
  Time total_pex_ = 0.0;
  int leaf_count_ = 0;
};

}  // namespace sda::task
