// Text notation for serial-parallel tasks, mirroring the paper's shorthand:
//
//   [T1 T2 T3]              three subtasks in series        (paper §3.1)
//   [T1 || T2 || T3]        three subtasks in parallel
//   [T1 [T2 || [T3 T4 T5]] [T6 || T7] T8]   Figure 1's example task
//
// Leaves may carry execution metadata so trees round-trip through text:
//
//   name[@node][:ex[/pex]]      e.g.  T3@2:1.5/1.2
//
// A missing @node leaves exec_node = -1 (to be bound by a placement step);
// a missing :ex leaves zero demand; a missing /pex defaults pex to ex.
// Mixing separators at one level ("[A || B C]") is rejected: the paper's
// class only composes pure-serial and pure-parallel groups.
#pragma once

#include <stdexcept>
#include <string>

#include "src/task/tree.hpp"

namespace sda::task {

/// Error with position information raised on malformed notation.
class NotationError : public std::runtime_error {
 public:
  NotationError(const std::string& what, std::size_t position)
      : std::runtime_error(what + " (at offset " +
                           std::to_string(position) + ")"),
        position_(position) {}

  std::size_t position() const noexcept { return position_; }

 private:
  std::size_t position_;
};

/// Parses the notation; throws NotationError on malformed input.
/// A bare leaf ("T1") is valid and yields a single-leaf tree.
TreePtr parse_notation(const std::string& text);

/// Prints a tree in the notation above. With @p with_attrs, leaves include
/// their @node and :ex/pex metadata so that
/// parse_notation(to_notation(t, true)) reproduces t.
std::string to_notation(const TreeNode& t, bool with_attrs = false);

}  // namespace sda::task
