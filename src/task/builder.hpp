// Fluent builder for serial-parallel task trees.
//
// The notation parser is convenient for text; this builder is convenient
// for code that composes structures dynamically:
//
//   TreePtr t = serial()
//                   .leaf(0, 1.0)                       // init
//                   .parallel([](auto& p) {             // fan-out
//                     for (int i = 1; i <= 4; ++i) p.leaf(i, 1.0);
//                   })
//                   .leaf(5, 2.0, 1.8, "analysis")
//                   .build();
//
// build() validates the result and throws std::invalid_argument on
// malformed trees (empty composites, unbound leaves with negative demand).
#pragma once

#include "src/task/tree.hpp"
#include "src/util/function_ref.hpp"

namespace sda::task {

class CompositeBuilder {
 public:
  /// Adds a simple subtask. pex < 0 defaults to ex.
  CompositeBuilder& leaf(int exec_node, Time exec_time, Time pred_exec = -1.0,
                         std::string name = {});

  /// Adds a nested serial group populated by @p fill (called before
  /// returning, so a lambda temporary at the call site is fine).
  CompositeBuilder& serial(util::FunctionRef<void(CompositeBuilder&)> fill);

  /// Adds a nested parallel group populated by @p fill.
  CompositeBuilder& parallel(util::FunctionRef<void(CompositeBuilder&)> fill);

  /// Adds an already-built subtree (takes ownership).
  CompositeBuilder& subtree(TreePtr t);

  /// Number of direct children added so far.
  std::size_t size() const noexcept { return children_.size(); }

  /// Finalizes: validates and returns the tree.  A single-child composite
  /// collapses to its child (as in the notation).  Throws on empty or
  /// invalid structure.
  TreePtr build();

 private:
  friend CompositeBuilder serial();
  friend CompositeBuilder parallel();
  explicit CompositeBuilder(TreeNode::Kind kind) : kind_(kind) {}

  TreeNode::Kind kind_;
  std::vector<TreePtr> children_;
};

/// Starts a top-level serial composition.
CompositeBuilder serial();

/// Starts a top-level parallel composition.
CompositeBuilder parallel();

}  // namespace sda::task
