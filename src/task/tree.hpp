// Serial-parallel task structure (paper rules GT1-GT3).
//
// A TreeNode describes the *shape* of a global task: a leaf is a simple
// subtask destined for one node; Serial children execute one after another;
// Parallel children all start together and the composite finishes when the
// last child finishes.  Arbitrary composition is allowed, e.g. the paper's
// Figure 1 task [T1 [T2 || [T3 T4 T5]] [T6 || T7] T8].
//
// The tree carries the per-leaf execution demand (ex) and prediction (pex)
// drawn by the workload generator; runtime state (queueing, completion)
// lives in core::ProcessManager, not here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/util/arena.hpp"

namespace sda::task {

using sim::Time;

struct TreeNode;
using TreePtr = std::unique_ptr<TreeNode>;

struct TreeNode {
  enum class Kind { Leaf, Serial, Parallel };

  Kind kind = Kind::Leaf;
  std::string name;  ///< optional label (used by the notation printer)

  // Leaf-only fields.
  int exec_node = -1;    ///< index of the node this simple subtask runs on
  Time exec_time = 0.0;  ///< ex: drawn service demand
  Time pred_exec = 0.0;  ///< pex: estimate visible to SDA strategies

  /// Dense DFS-preorder index within the owning tree, stamped by
  /// task::FlatTree::build (attributes.hpp).  Lets runtime bookkeeping use
  /// flat slot-indexed arrays instead of per-node hash maps.  Mutable
  /// because stamping slots is bookkeeping, not a change to the tree's
  /// value; meaningless until a FlatTree has been built over this tree.
  mutable std::uint32_t slot = 0;

  // Composite-only field.
  std::vector<TreePtr> children;

  bool is_leaf() const noexcept { return kind == Kind::Leaf; }
  bool is_serial() const noexcept { return kind == Kind::Serial; }
  bool is_parallel() const noexcept { return kind == Kind::Parallel; }

  /// Tree nodes churn at run frequency (every clone for a dispatched run,
  /// every parsed notation string); route them through the thread-cached
  /// size-class pool so hot-path clone/parse never hits the global heap.
  /// TreeNode is never derived from, so the sized pool free is exact.
  // sda-lint: allow(NAKED_NEW) pooled allocation operators, not heap use
  static void* operator new(std::size_t bytes) {
    return util::pool_alloc(bytes);
  }
  // sda-lint: allow(NAKED_NEW) matching pooled deallocation operator
  static void operator delete(void* p) noexcept {
    util::pool_free(p, sizeof(TreeNode));
  }
};

/// Creates a simple subtask bound to @p exec_node with the given demand.
/// pex defaults to ex (perfect prediction) when negative.
TreePtr make_leaf(int exec_node, Time exec_time, Time pred_exec = -1.0,
                  std::string name = {});

/// Creates a serial composition of the given children. Requires >= 1 child.
TreePtr make_serial(std::vector<TreePtr> children, std::string name = {});

/// Creates a parallel composition of the given children. Requires >= 1 child.
TreePtr make_parallel(std::vector<TreePtr> children, std::string name = {});

/// Deep copy.
TreePtr clone(const TreeNode& t);

/// Number of leaves (simple subtasks) in the tree.
int leaf_count(const TreeNode& t) noexcept;

/// Maximum nesting depth; a leaf has depth 1.
int depth(const TreeNode& t) noexcept;

/// Critical-path execution time: leaves contribute ex; serial nodes sum
/// their children; parallel nodes take the max.  For a flat parallel task
/// this is max_i ex(T_i), exactly the term in the paper's Equation 2.
Time critical_path_ex(const TreeNode& t) noexcept;

/// Critical path over the *predicted* execution times (pex).
Time critical_path_pex(const TreeNode& t) noexcept;

/// Total execution demand over all leaves (system work for the task).
Time total_ex(const TreeNode& t) noexcept;

/// Total predicted demand over all leaves.
Time total_pex(const TreeNode& t) noexcept;

/// Collects pointers to all leaves in execution-independent DFS order.
std::vector<const TreeNode*> leaves(const TreeNode& t);

/// Structural validation: composites have >= 1 child, leaves have a
/// non-negative exec_node and demands, names contain no brackets.
/// Returns an empty string when valid, else a human-readable reason.
std::string validate(const TreeNode& t);

}  // namespace sda::task
