#include "src/task/notation.hpp"

#include <charconv>
#include <sstream>

namespace sda::task {

namespace {

// ASCII-exact classifiers (the grammar is ASCII; bytes >= 0x80 are neither
// space nor name characters, matching <cctype> in the classic locale) —
// inlined, unlike the locale-table calls they replace on this hot path.
constexpr bool is_space_ascii(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}
constexpr bool is_digit_ascii(char c) noexcept { return c >= '0' && c <= '9'; }
constexpr bool is_name_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         is_digit_ascii(c) || c == '_' || c == '-' || c == '.';
}

/// Recursive-descent parser over the notation grammar.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  TreePtr parse() {
    skip_ws();
    TreePtr t = parse_task();
    skip_ws();
    if (pos_ != text_.size()) {
      throw NotationError("trailing input after task", pos_);
    }
    return t;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && is_space_ascii(text_[pos_])) {
      ++pos_;
    }
  }

  bool at(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool at_parallel_sep() const {
    return pos_ + 1 < text_.size() && text_[pos_] == '|' &&
           text_[pos_ + 1] == '|';
  }

  TreePtr parse_task() {
    skip_ws();
    if (pos_ >= text_.size()) throw NotationError("unexpected end of input", pos_);
    if (at('[')) return parse_composite();
    return parse_leaf();
  }

  TreePtr parse_composite() {
    const std::size_t open = pos_;
    ++pos_;  // consume '['
    std::vector<TreePtr> children;
    children.reserve(4);  // covers typical fan-outs without realloc churn
    children.push_back(parse_task());
    skip_ws();

    // The first separator decides serial vs parallel for this level.
    const bool parallel = at_parallel_sep();
    while (true) {
      skip_ws();
      if (at(']')) {
        ++pos_;
        break;
      }
      if (pos_ >= text_.size()) {
        throw NotationError("unclosed '['", open);
      }
      if (parallel) {
        if (!at_parallel_sep()) {
          throw NotationError("expected '||' between parallel subtasks", pos_);
        }
        pos_ += 2;
      } else if (at_parallel_sep()) {
        throw NotationError(
            "mixed serial/parallel at one level; nest with brackets", pos_);
      }
      children.push_back(parse_task());
    }
    if (children.size() == 1) {
      // [X] is just X: collapse the trivial composite.
      return std::move(children.front());
    }
    return parallel ? make_parallel(std::move(children))
                    : make_serial(std::move(children));
  }

  TreePtr parse_leaf() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
    // Single substring assignment (SSO for typical short names) instead of
    // growing character by character.
    std::string name(text_, start, pos_ - start);
    if (name.empty()) {
      throw NotationError(std::string("expected task name, found '") +
                              (pos_ < text_.size() ? std::string(1, text_[pos_])
                                                   : std::string("<eof>")) +
                              "'",
                          start);
    }
    int exec_node = -1;
    double ex = 0.0, pex = -1.0;
    if (at('@')) {
      ++pos_;
      exec_node = static_cast<int>(parse_number("node index"));
    }
    if (at(':')) {
      ++pos_;
      ex = parse_number("execution time");
      if (at('/')) {
        ++pos_;
        pex = parse_number("predicted execution time");
      }
    }
    return make_leaf(exec_node, ex, pex, std::move(name));
  }

  double parse_number(const char* what) {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (is_digit_ascii(c) || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          (c == '-' && pos_ == start)) {
        ++pos_;
      } else {
        break;
      }
    }
    // Allocation-free fast path straight off the input buffer.  from_chars
    // rejects a few spellings stod accepts (leading '+', locale quirks), so
    // anything it does not consume exactly falls back to the legacy path —
    // same accepted language, same errors, same values.
    double v = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec == std::errc() && ptr == last) return v;
    try {
      const std::string digits(text_, start, pos_ - start);
      std::size_t used = 0;
      const double slow = std::stod(digits, &used);
      if (used != digits.size()) throw std::invalid_argument(digits);
      return slow;
    } catch (const std::exception&) {
      throw NotationError(std::string("malformed ") + what, start);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void print(const TreeNode& t, bool with_attrs, std::ostringstream& os) {
  if (t.is_leaf()) {
    os << (t.name.empty() ? "T" : t.name);
    if (with_attrs) {
      if (t.exec_node >= 0) os << '@' << t.exec_node;
      os << ':' << t.exec_time << '/' << t.pred_exec;
    }
    return;
  }
  os << '[';
  for (std::size_t i = 0; i < t.children.size(); ++i) {
    if (i) os << (t.is_parallel() ? " || " : " ");
    print(*t.children[i], with_attrs, os);
  }
  os << ']';
}

}  // namespace

TreePtr parse_notation(const std::string& text) {
  return Parser(text).parse();
}

std::string to_notation(const TreeNode& t, bool with_attrs) {
  std::ostringstream os;
  print(t, with_attrs, os);
  return os.str();
}

}  // namespace sda::task
