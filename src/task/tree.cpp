#include "src/task/tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace sda::task {

TreePtr make_leaf(int exec_node, Time exec_time, Time pred_exec,
                  std::string name) {
  auto t = std::make_unique<TreeNode>();
  t->kind = TreeNode::Kind::Leaf;
  t->exec_node = exec_node;
  t->exec_time = exec_time;
  t->pred_exec = pred_exec < 0.0 ? exec_time : pred_exec;
  t->name = std::move(name);
  return t;
}

namespace {
TreePtr make_composite(TreeNode::Kind kind, std::vector<TreePtr> children,
                       std::string name) {
  if (children.empty()) {
    throw std::invalid_argument("composite task needs at least one child");
  }
  for (const auto& c : children) {
    if (!c) throw std::invalid_argument("composite task has a null child");
  }
  auto t = std::make_unique<TreeNode>();
  t->kind = kind;
  t->children = std::move(children);
  t->name = std::move(name);
  return t;
}
}  // namespace

TreePtr make_serial(std::vector<TreePtr> children, std::string name) {
  return make_composite(TreeNode::Kind::Serial, std::move(children),
                        std::move(name));
}

TreePtr make_parallel(std::vector<TreePtr> children, std::string name) {
  return make_composite(TreeNode::Kind::Parallel, std::move(children),
                        std::move(name));
}

TreePtr clone(const TreeNode& t) {
  auto copy = std::make_unique<TreeNode>();
  copy->kind = t.kind;
  copy->name = t.name;
  copy->exec_node = t.exec_node;
  copy->exec_time = t.exec_time;
  copy->pred_exec = t.pred_exec;
  copy->children.reserve(t.children.size());
  for (const auto& c : t.children) copy->children.push_back(clone(*c));
  return copy;
}

int leaf_count(const TreeNode& t) noexcept {
  if (t.is_leaf()) return 1;
  int n = 0;
  for (const auto& c : t.children) n += leaf_count(*c);
  return n;
}

int depth(const TreeNode& t) noexcept {
  if (t.is_leaf()) return 1;
  int d = 0;
  for (const auto& c : t.children) d = std::max(d, depth(*c));
  return d + 1;
}

namespace {
template <typename Demand>
Time critical_path(const TreeNode& t, Demand demand) noexcept {
  if (t.is_leaf()) return demand(t);
  Time acc = 0.0;
  if (t.is_serial()) {
    for (const auto& c : t.children) acc += critical_path(*c, demand);
  } else {
    for (const auto& c : t.children) {
      acc = std::max(acc, critical_path(*c, demand));
    }
  }
  return acc;
}
}  // namespace

Time critical_path_ex(const TreeNode& t) noexcept {
  return critical_path(t, [](const TreeNode& n) { return n.exec_time; });
}

Time critical_path_pex(const TreeNode& t) noexcept {
  return critical_path(t, [](const TreeNode& n) { return n.pred_exec; });
}

Time total_ex(const TreeNode& t) noexcept {
  if (t.is_leaf()) return t.exec_time;
  Time acc = 0.0;
  for (const auto& c : t.children) acc += total_ex(*c);
  return acc;
}

Time total_pex(const TreeNode& t) noexcept {
  if (t.is_leaf()) return t.pred_exec;
  Time acc = 0.0;
  for (const auto& c : t.children) acc += total_pex(*c);
  return acc;
}

namespace {
void collect_leaves(const TreeNode& t, std::vector<const TreeNode*>& out) {
  if (t.is_leaf()) {
    out.push_back(&t);
    return;
  }
  for (const auto& c : t.children) collect_leaves(*c, out);
}
}  // namespace

std::vector<const TreeNode*> leaves(const TreeNode& t) {
  std::vector<const TreeNode*> out;
  out.reserve(static_cast<std::size_t>(leaf_count(t)));
  collect_leaves(t, out);
  return out;
}

std::string validate(const TreeNode& t) {
  if (t.name.find_first_of("[]|") != std::string::npos) {
    return "task name '" + t.name + "' contains notation metacharacters";
  }
  if (t.is_leaf()) {
    if (t.exec_node < 0) return "leaf '" + t.name + "' has no execution node";
    if (t.exec_time < 0.0) return "leaf '" + t.name + "' has negative ex";
    if (t.pred_exec < 0.0) return "leaf '" + t.name + "' has negative pex";
    if (!t.children.empty()) return "leaf '" + t.name + "' has children";
    return {};
  }
  if (t.children.empty()) {
    return std::string(t.is_serial() ? "serial" : "parallel") +
           " composite has no children";
  }
  for (const auto& c : t.children) {
    if (!c) return "composite has a null child";
    if (auto why = validate(*c); !why.empty()) return why;
  }
  return {};
}

}  // namespace sda::task
