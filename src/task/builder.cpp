#include "src/task/builder.hpp"

#include <stdexcept>

namespace sda::task {

CompositeBuilder& CompositeBuilder::leaf(int exec_node, Time exec_time,
                                         Time pred_exec, std::string name) {
  children_.push_back(
      make_leaf(exec_node, exec_time, pred_exec, std::move(name)));
  return *this;
}

CompositeBuilder& CompositeBuilder::serial(
    util::FunctionRef<void(CompositeBuilder&)> fill) {
  CompositeBuilder nested(TreeNode::Kind::Serial);
  fill(nested);
  children_.push_back(nested.build());
  return *this;
}

CompositeBuilder& CompositeBuilder::parallel(
    util::FunctionRef<void(CompositeBuilder&)> fill) {
  CompositeBuilder nested(TreeNode::Kind::Parallel);
  fill(nested);
  children_.push_back(nested.build());
  return *this;
}

CompositeBuilder& CompositeBuilder::subtree(TreePtr t) {
  if (!t) throw std::invalid_argument("builder: null subtree");
  children_.push_back(std::move(t));
  return *this;
}

TreePtr CompositeBuilder::build() {
  if (children_.empty()) {
    throw std::invalid_argument("builder: composite has no children");
  }
  TreePtr result;
  if (children_.size() == 1) {
    result = std::move(children_.front());  // collapse trivial composite
  } else if (kind_ == TreeNode::Kind::Serial) {
    result = make_serial(std::move(children_));
  } else {
    result = make_parallel(std::move(children_));
  }
  children_.clear();
  if (const std::string why = validate(*result); !why.empty()) {
    throw std::invalid_argument("builder: " + why);
  }
  return result;
}

CompositeBuilder serial() {
  return CompositeBuilder(TreeNode::Kind::Serial);
}

CompositeBuilder parallel() {
  return CompositeBuilder(TreeNode::Kind::Parallel);
}

}  // namespace sda::task
