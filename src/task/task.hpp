// Runtime task instances: the unit a node's scheduler works with.
//
// A SimpleTask is either a *local* task (generated at one node, paper §3.1)
// or a *simple subtask* of a global task, dispatched by the process manager.
// Schedulers order SimpleTasks by their virtual deadline; the process
// manager correlates subtask completions back to their global run via
// owner_run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/task/attributes.hpp"

namespace sda::task {

enum class TaskKind : std::uint8_t {
  kLocal,    ///< generated at a node, runs only there
  kSubtask,  ///< simple subtask of a global task
};

enum class TaskState : std::uint8_t {
  kCreated,    ///< constructed, not yet submitted
  kQueued,     ///< waiting in a node's scheduler queue
  kRunning,    ///< in service at a node
  kCompleted,  ///< finished service
  kAborted,    ///< removed before finishing (PM or local-scheduler abort)
  kFailed,     ///< killed by a fault (node crash or transient failure);
               ///< terminal unless the process manager retries it
};

/// True for states no further service will change (unless resubmitted).
inline bool is_terminal(TaskState s) noexcept {
  return s == TaskState::kCompleted || s == TaskState::kAborted ||
         s == TaskState::kFailed;
}

/// Converts a state to a short lowercase string (for logs and tests).
const char* to_string(TaskState s) noexcept;
const char* to_string(TaskKind k) noexcept;

struct SimpleTask {
  std::uint64_t id = 0;          ///< unique per experiment run
  TaskKind kind = TaskKind::kLocal;
  int exec_node = -1;            ///< node(X): where this must run
  Attributes attrs;
  TaskState state = TaskState::kCreated;

  /// Metrics class (metrics::TaskClass id): locals and globals of different
  /// sizes are reported separately (paper Fig. 12).
  int metrics_class = 0;

  /// Identifier of the owning global run; 0 for local tasks.  The process
  /// manager resolves this back to its bookkeeping record.
  std::uint64_t owner_run = 0;

  /// Slot of the originating leaf in the owning run's tree (TreeNode::slot
  /// at dispatch time); 0 for local tasks.  Lets the process manager index
  /// flat per-run arrays instead of hashing the task id.
  std::uint32_t leaf_slot = 0;

  /// If true, a local-scheduler abort policy must not abort this task (the
  /// paper's "special directives ... that subtasks are non-abortable
  /// locally", §7.3).
  bool non_abortable = false;

  /// Scheduler bookkeeping: enqueue sequence number for deterministic
  /// FIFO tie-breaks among equal virtual deadlines.
  std::uint64_t enqueue_seq = 0;

  /// Scheduler bookkeeping: current position in the owning ready queue's
  /// indexed heap (sched::detail::IndexedTaskHeap), enabling O(log n)
  /// removal without scanning.  kNotQueued while the task is not in any
  /// ready queue.  Maintained by the schedulers; meaningless elsewhere.
  static constexpr std::uint32_t kNotQueued = 0xffffffffu;
  std::uint32_t queue_pos = kNotQueued;

  /// Remaining service demand; initialized to ex on submission, decremented
  /// on preemption (preemptive-resume ablation) and reset on resubmission.
  Time remaining = 0.0;

  // Trace timestamps (negative = not yet happened).
  Time submitted_at = -1.0;
  Time started_at = -1.0;
  Time finished_at = -1.0;

  /// Number of times this task entered service (>1 after local-abort
  /// resubmission or preemption).
  int service_attempts = 0;

  /// True when the task finished at or before its *real* deadline.
  bool met_real_deadline() const noexcept {
    return state == TaskState::kCompleted &&
           finished_at <= attrs.real_deadline;
  }
};

using TaskPtr = std::shared_ptr<SimpleTask>;

/// Convenience factory for a local task with virtual deadline == real one.
TaskPtr make_local_task(std::uint64_t id, int exec_node, Time arrival,
                        Time exec_time, Time deadline);

/// Convenience factory for a global subtask; the virtual deadline is set
/// later by the deadline-assignment strategy.
TaskPtr make_subtask(std::uint64_t id, std::uint64_t owner_run, int exec_node,
                     Time arrival, Time exec_time, Time pred_exec,
                     Time real_deadline);

}  // namespace sda::task
