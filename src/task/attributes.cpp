// Attributes is a header-only value type; this translation unit exists to
// anchor the module in the build and to hold its static checks.
#include "src/task/attributes.hpp"

#include <type_traits>

namespace sda::task {

static_assert(std::is_trivially_copyable_v<Attributes>,
              "Attributes must stay a plain value type");
static_assert(std::is_aggregate_v<Attributes>,
              "Attributes must stay aggregate-initializable");

}  // namespace sda::task
