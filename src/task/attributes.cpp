// Attributes is a header-only value type (static checks below); FlatTree's
// build walk lives here.
#include "src/task/attributes.hpp"

#include <algorithm>
#include <type_traits>

#include "src/task/tree.hpp"

namespace sda::task {

static_assert(std::is_trivially_copyable_v<Attributes>,
              "Attributes must stay a plain value type");
static_assert(std::is_aggregate_v<Attributes>,
              "Attributes must stay aggregate-initializable");

namespace {
std::uint32_t count_nodes(const TreeNode& t) noexcept {
  std::uint32_t n = 1;
  for (const auto& c : t.children) n += count_nodes(*c);
  return n;
}
}  // namespace

void FlatTree::build(const TreeNode& root) {
  const std::uint32_t n = count_nodes(root);
  arena_.reset();
  node_ = arena_.alloc_array<const TreeNode*>(n);
  parent_ = arena_.alloc_array<std::uint32_t>(n);
  index_in_parent_ = arena_.alloc_array<std::uint32_t>(n);
  kind_ = arena_.alloc_array<std::uint8_t>(n);
  cp_pex_ = arena_.alloc_array<Time>(n);
  child_off_ = arena_.alloc_array<std::uint32_t>(n);
  child_cnt_ = arena_.alloc_array<std::uint32_t>(n);
  // Every node except the root is someone's child: n - 1 entries, padded
  // to 1 so the pointers stay valid for a single-leaf tree.
  const std::uint32_t edges = n > 1 ? n - 1 : 1;
  children_ = arena_.alloc_array<std::uint32_t>(edges);
  child_cp_pex_ = arena_.alloc_array<Time>(edges);
  count_ = n;
  next_slot_ = 0;
  child_cursor_ = 0;
  leaf_count_ = 0;
  const SubtreeAgg agg = fill(root, kNoParent, 0);
  total_ex_ = agg.tot_ex;
  total_pex_ = agg.tot_pex;
}

FlatTree::SubtreeAgg FlatTree::fill(const TreeNode& t, std::uint32_t parent,
                                    std::uint32_t index_in_parent) {
  const std::uint32_t s = next_slot_++;
  t.slot = s;
  node_[s] = &t;
  parent_[s] = parent;
  index_in_parent_[s] = index_in_parent;
  const std::uint32_t cnt = static_cast<std::uint32_t>(t.children.size());
  child_cnt_[s] = cnt;
  const std::uint32_t off = child_cursor_;
  child_off_[s] = off;
  child_cursor_ += cnt;

  if (t.is_leaf()) {
    kind_[s] = 0;
    cp_pex_[s] = t.pred_exec;
    ++leaf_count_;
    return SubtreeAgg{t.pred_exec, t.exec_time, t.pred_exec};
  }
  kind_[s] = t.is_serial() ? 1 : 2;

  // Accumulate in the recursive helpers' exact operation order (serial:
  // left-to-right sum; parallel: left-to-right max; totals: per-subtree
  // sums folded left-to-right) so the doubles match them bit-for-bit.
  const bool serial = t.is_serial();
  Time cp = 0.0;
  Time tot_ex = 0.0;
  Time tot_pex = 0.0;
  for (std::uint32_t i = 0; i < cnt; ++i) {
    const std::uint32_t child_slot = next_slot_;  // fill() takes this next
    const SubtreeAgg c = fill(*t.children[i], s, i);
    children_[off + i] = child_slot;
    child_cp_pex_[off + i] = c.cp_pex;
    if (serial) {
      cp += c.cp_pex;
    } else {
      cp = std::max(cp, c.cp_pex);
    }
    tot_ex += c.tot_ex;
    tot_pex += c.tot_pex;
  }
  cp_pex_[s] = cp;
  return SubtreeAgg{cp, tot_ex, tot_pex};
}

}  // namespace sda::task
