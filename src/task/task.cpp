#include "src/task/task.hpp"

#include "src/util/arena.hpp"

namespace sda::task {

namespace {
/// Tasks are created and retired at event frequency; allocate_shared with
/// the pooled allocator puts object + control block in one pooled block,
/// so the steady state recycles thread-cached memory instead of malloc.
task::TaskPtr pooled_task() {
  return std::allocate_shared<SimpleTask>(util::PoolAllocator<SimpleTask>{});
}
}  // namespace

const char* to_string(TaskState s) noexcept {
  switch (s) {
    case TaskState::kCreated: return "created";
    case TaskState::kQueued: return "queued";
    case TaskState::kRunning: return "running";
    case TaskState::kCompleted: return "completed";
    case TaskState::kAborted: return "aborted";
    case TaskState::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(TaskKind k) noexcept {
  switch (k) {
    case TaskKind::kLocal: return "local";
    case TaskKind::kSubtask: return "subtask";
  }
  return "?";
}

TaskPtr make_local_task(std::uint64_t id, int exec_node, Time arrival,
                        Time exec_time, Time deadline) {
  auto t = pooled_task();
  t->id = id;
  t->kind = TaskKind::kLocal;
  t->exec_node = exec_node;
  t->attrs.arrival = arrival;
  t->attrs.exec_time = exec_time;
  t->attrs.pred_exec = exec_time;
  t->attrs.real_deadline = deadline;
  t->attrs.virtual_deadline = deadline;
  t->remaining = exec_time;
  return t;
}

TaskPtr make_subtask(std::uint64_t id, std::uint64_t owner_run, int exec_node,
                     Time arrival, Time exec_time, Time pred_exec,
                     Time real_deadline) {
  auto t = pooled_task();
  t->id = id;
  t->kind = TaskKind::kSubtask;
  t->owner_run = owner_run;
  t->exec_node = exec_node;
  t->attrs.arrival = arrival;
  t->attrs.exec_time = exec_time;
  t->attrs.pred_exec = pred_exec;
  t->attrs.real_deadline = real_deadline;
  t->attrs.virtual_deadline = real_deadline;  // UD until a strategy runs
  t->remaining = exec_time;
  return t;
}

}  // namespace sda::task
