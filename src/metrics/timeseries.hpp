// Windowed time series of miss rates.
//
// The paper argues that transient overload drives most misses (§5); a
// steady-state average hides exactly that.  MissTimeSeries buckets terminal
// tasks into fixed time windows by arrival time and reports the per-window
// miss fraction, making overload episodes visible (see
// examples/overload_storm.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/event_queue.hpp"

namespace sda::metrics {

class MissTimeSeries {
 public:
  /// Buckets [0, horizon) into windows of the given width.
  /// Requires horizon > 0, 0 < window <= horizon.
  MissTimeSeries(sim::Time horizon, sim::Time window);

  /// Records one terminal task that arrived at @p arrival.
  /// Arrivals outside [0, horizon) are ignored.
  void record(sim::Time arrival, bool missed);

  std::size_t windows() const noexcept { return finished_.size(); }
  sim::Time window_width() const noexcept { return window_; }

  /// Start time of window @p i.
  sim::Time window_start(std::size_t i) const noexcept {
    return static_cast<sim::Time>(i) * window_;
  }

  std::uint64_t finished(std::size_t i) const { return finished_.at(i); }
  std::uint64_t missed(std::size_t i) const { return missed_.at(i); }

  /// Per-window miss fraction (0 for empty windows).
  double miss_rate(std::size_t i) const;

  /// The largest per-window miss rate (the worst transient), ignoring
  /// windows with fewer than @p min_samples tasks.
  double peak_miss_rate(std::uint64_t min_samples = 10) const;

  /// All per-window miss rates, for charting.
  std::vector<double> rates() const;

 private:
  sim::Time window_;
  std::vector<std::uint64_t> finished_;
  std::vector<std::uint64_t> missed_;
};

}  // namespace sda::metrics
