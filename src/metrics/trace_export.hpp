// Chrome trace_event exporter for metrics::Tracer.
//
// Renders a captured lifecycle trace in the Chrome/Perfetto trace_event
// JSON format (https://ui.perfetto.dev opens the file directly): one named
// track (tid) per node carrying "X" service slices reconstructed from
// start/terminal event pairs plus "i" instants for submissions, and a
// final "global runs" track carrying one instant per global-run milestone
// with flow arrows ("s"/"f", id = run id) connecting a run's submission to
// its completion through its subtask slices ("t" steps).
//
// The exporter is strictly post-hoc: it reads the Tracer's record ring and
// writes JSON.  It never touches the simulation, so attaching it cannot
// change a determinism fingerprint.
#pragma once

#include <ostream>
#include <string>

#include "src/metrics/trace.hpp"

namespace sda::metrics {

/// Writes the whole trace as a Chrome trace_event JSON document.
/// @p node_count is the number of node tracks to declare (compute nodes
/// plus links, i.e. k + link_count); the global-run track lands at
/// tid == node_count.  Sim time units render as milliseconds (ts is in
/// microseconds, so ts = time * 1000).
void write_chrome_trace(const Tracer& tracer, int node_count,
                        std::ostream& os);

/// Same, to a file.  Throws std::runtime_error when the file cannot be
/// opened.
void write_chrome_trace_file(const Tracer& tracer, int node_count,
                             const std::string& path);

}  // namespace sda::metrics
