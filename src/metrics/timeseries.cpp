#include "src/metrics/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sda::metrics {

MissTimeSeries::MissTimeSeries(sim::Time horizon, sim::Time window)
    : window_(window) {
  if (!(horizon > 0.0) || !(window > 0.0) || window > horizon) {
    throw std::invalid_argument(
        "MissTimeSeries: need 0 < window <= horizon");
  }
  const auto n = static_cast<std::size_t>(std::ceil(horizon / window));
  finished_.assign(n, 0);
  missed_.assign(n, 0);
}

void MissTimeSeries::record(sim::Time arrival, bool missed) {
  if (arrival < 0.0) return;
  const auto idx = static_cast<std::size_t>(arrival / window_);
  if (idx >= finished_.size()) return;
  ++finished_[idx];
  if (missed) ++missed_[idx];
}

double MissTimeSeries::miss_rate(std::size_t i) const {
  const std::uint64_t f = finished_.at(i);
  return f ? static_cast<double>(missed_.at(i)) / static_cast<double>(f) : 0.0;
}

double MissTimeSeries::peak_miss_rate(std::uint64_t min_samples) const {
  double peak = 0.0;
  for (std::size_t i = 0; i < finished_.size(); ++i) {
    if (finished_[i] >= min_samples) peak = std::max(peak, miss_rate(i));
  }
  return peak;
}

std::vector<double> MissTimeSeries::rates() const {
  std::vector<double> out;
  out.reserve(finished_.size());
  for (std::size_t i = 0; i < finished_.size(); ++i) {
    out.push_back(miss_rate(i));
  }
  return out;
}

}  // namespace sda::metrics
