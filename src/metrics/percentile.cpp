#include "src/metrics/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sda::metrics {

LogHistogram::LogHistogram(double min_value, double max_value,
                           int buckets_per_octave)
    : min_value_(min_value), max_value_(max_value),
      per_octave_(buckets_per_octave) {
  if (!(min_value > 0.0) || !(max_value > min_value) ||
      buckets_per_octave < 1) {
    throw std::invalid_argument(
        "LogHistogram: need 0 < min_value < max_value, buckets_per_octave "
        ">= 1");
  }
  inv_log_gamma_ =
      static_cast<double>(per_octave_) / std::log(2.0);
  const std::size_t log_buckets = static_cast<std::size_t>(
      std::ceil(std::log(max_value_ / min_value_) * inv_log_gamma_));
  // [zero][log_buckets...][overflow]
  counts_.assign(log_buckets + 2, 0);
}

std::size_t LogHistogram::bucket_index(double x) const noexcept {
  if (!(x >= min_value_)) return 0;  // zero bucket (also catches NaN)
  if (x >= max_value_) return counts_.size() - 1;
  const auto i =
      static_cast<std::size_t>(std::log(x / min_value_) * inv_log_gamma_);
  // Rounding at an exact bucket edge can land one past the last log bucket.
  return std::min(i + 1, counts_.size() - 2);
}

double LogHistogram::bucket_lo(std::size_t i) const noexcept {
  if (i == 0) return 0.0;
  if (i == counts_.size() - 1) return max_value_;
  return min_value_ *
         std::exp(static_cast<double>(i - 1) / inv_log_gamma_);
}

double LogHistogram::bucket_hi(std::size_t i) const noexcept {
  if (i == 0) return min_value_;
  if (i == counts_.size() - 1) return max_value_;
  return min_value_ * std::exp(static_cast<double>(i) / inv_log_gamma_);
}

void LogHistogram::add(double x, std::uint64_t count) noexcept {
  counts_[bucket_index(x)] += count;
  total_ += count;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (!same_geometry(other)) {
    throw std::invalid_argument("LogHistogram::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) q = 1.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      if (i == 0) return 0.0;  // zero bucket reports its floor
      const double frac =
          (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return max_value_;
}

double LogHistogram::approximate_mean() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    sum += static_cast<double>(counts_[i]) *
           0.5 * (bucket_lo(i) + bucket_hi(i));
  }
  return sum / static_cast<double>(total_);
}

Quantiles summarize(const LogHistogram& h) noexcept {
  Quantiles q;
  q.count = h.total();
  q.mean = h.approximate_mean();
  q.p50 = h.quantile(0.50);
  q.p90 = h.quantile(0.90);
  q.p99 = h.quantile(0.99);
  q.p999 = h.quantile(0.999);
  return q;
}

}  // namespace sda::metrics
