// Log-bucketed latency histogram for tail-quantile telemetry.
//
// The paper's figures are aggregate miss-rate curves; diagnosing *why* a
// strategy wins under load needs the distribution's tail (P99/P99.9 of
// tardiness and response time), which a fixed-width histogram cannot cover
// without either losing resolution near zero or truncating the tail.
// LogHistogram uses geometrically spaced buckets — constant *relative*
// error (~'precision' sub-buckets per octave, HdrHistogram-style) — so one
// structure spans microseconds to full-run horizons.
//
// Buckets are addressed purely arithmetically from the value, so two
// histograms with the same geometry merge bucket-by-bucket: replications
// aggregate exactly (same totals as a single pass over all samples).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sda::metrics {

class LogHistogram {
 public:
  /// Geometry: values in [0, min_value) land in the zero bucket; values in
  /// [min_value, max_value) map to log-spaced buckets with
  /// @p buckets_per_octave sub-buckets per doubling; >= max_value goes to
  /// the overflow bucket.  Requires 0 < min_value < max_value and
  /// buckets_per_octave >= 1.
  explicit LogHistogram(double min_value = 1e-3, double max_value = 1e6,
                        int buckets_per_octave = 8);

  void add(double x) noexcept { add(x, 1); }
  /// Bulk add (merging pre-counted data).
  void add(double x, std::uint64_t count) noexcept;

  /// Bucket-wise merge.  Requires identical geometry (throws
  /// std::invalid_argument otherwise).
  void merge(const LogHistogram& other);

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t zero_count() const noexcept { return counts_.empty() ? 0 : counts_[0]; }

  double min_value() const noexcept { return min_value_; }
  double max_value() const noexcept { return max_value_; }
  int buckets_per_octave() const noexcept { return per_octave_; }

  /// Approximate quantile (q in [0, 1]) with linear interpolation inside
  /// the containing bucket.  0 when empty.
  double quantile(double q) const noexcept;

  /// Sample mean approximated from bucket midpoints (exact for the zero
  /// bucket).  0 when empty.
  double approximate_mean() const noexcept;

  /// True when the two histograms can merge().
  bool same_geometry(const LogHistogram& other) const noexcept {
    return min_value_ == other.min_value_ && max_value_ == other.max_value_ &&
           per_octave_ == other.per_octave_;
  }

 private:
  std::size_t bucket_index(double x) const noexcept;
  /// Inclusive lower / exclusive upper value edges of bucket @p i.
  double bucket_lo(std::size_t i) const noexcept;
  double bucket_hi(std::size_t i) const noexcept;

  double min_value_;
  double max_value_;
  int per_octave_;
  double inv_log_gamma_;  ///< 1 / ln(2^(1/per_octave))
  /// counts_[0] = zero bucket, counts_[1..n] = log buckets, counts_.back()
  /// = overflow.
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// The quantile set every telemetry surface reports.
struct Quantiles {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Summarizes a histogram into the standard quantile set.
Quantiles summarize(const LogHistogram& h) noexcept;

}  // namespace sda::metrics
