#include "src/metrics/collector.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sda::metrics {

std::string default_class_name(int cls) {
  if (cls == kLocalClass) return "local";
  if (cls == kSubtaskClass) return "subtask";
  if (cls == kGlobalClassBase) return "global(graph)";  // scenario tasks
  if (is_global_class(cls)) {
    std::ostringstream os;
    os << "global(n=" << cls - kGlobalClassBase << ")";
    return os.str();
  }
  return "class-" + std::to_string(cls);
}

void Collector::record_simple(const task::SimpleTask& t) {
  // A fault-killed task counts exactly like an aborted one: it missed its
  // deadline and never completed.
  const bool aborted = t.state == task::TaskState::kAborted ||
                       t.state == task::TaskState::kFailed;
  if (!aborted && t.state != task::TaskState::kCompleted) {
    throw std::logic_error("Collector::record_simple: task not terminal");
  }
  const bool missed = aborted || t.finished_at > t.attrs.real_deadline;
  const double response = aborted ? -1.0 : t.finished_at - t.attrs.arrival;
  const double tardiness =
      std::max(0.0, t.finished_at - t.attrs.real_deadline);
  record(t.metrics_class, t.attrs.arrival, missed, aborted, t.attrs.exec_time,
         response, tardiness, t.exec_node);
}

void Collector::record_global(const core::GlobalTaskRecord& rec) {
  const double response = rec.aborted ? -1.0 : rec.finished_at - rec.arrival;
  const double tardiness =
      std::max(0.0, rec.finished_at - rec.real_deadline);
  if (rec.arrival >= warmup_) {
    global_retries_ += static_cast<std::uint64_t>(rec.retries);
    if (rec.shed) ++shed_runs_;
  }
  record(rec.metrics_class, rec.arrival, rec.missed, rec.aborted,
         rec.total_work, response, tardiness);
}

void Collector::record(int cls, double arrival, bool missed, bool aborted,
                       double work, double response, double tardiness,
                       int node) {
  if (arrival < warmup_) return;
  ClassCounts& c = by_class_[cls];
  ++c.finished;
  c.work_total += work;
  if (missed) {
    ++c.missed;
    c.work_missed += work;
  }
  if (aborted) ++c.aborted;
  ClassTimings& t = timings_[cls];
  if (response >= 0.0) t.response.add(response);
  t.tardiness.add(tardiness);
  if (histograms_enabled_) {
    auto it = tardiness_hist_.find(cls);
    if (it == tardiness_hist_.end()) {
      it = tardiness_hist_
               .emplace(cls, util::Histogram(0.0, hist_max_, hist_buckets_))
               .first;
    }
    it->second.add(tardiness);
  }
  if (distributions_on_) {
    auto observe = [&](DistributionSet& d) {
      if (response >= 0.0) d.response.add(response);
      d.tardiness.add(tardiness);
    };
    observe(class_dists_[cls]);
    if (node >= 0) observe(node_dists_[node]);
  }
}

void Collector::enable_tardiness_histograms(double max_tardiness,
                                            std::size_t buckets) {
  histograms_enabled_ = true;
  hist_max_ = max_tardiness;
  hist_buckets_ = buckets;
}

TardinessProfile Collector::tardiness_profile(int cls) const {
  TardinessProfile p;
  auto it = tardiness_hist_.find(cls);
  if (it == tardiness_hist_.end()) return p;
  p.enabled = true;
  p.p50 = it->second.quantile(0.50);
  p.p90 = it->second.quantile(0.90);
  p.p99 = it->second.quantile(0.99);
  return p;
}

void Collector::enable_distributions() { distributions_on_ = true; }

namespace {
template <typename Map>
std::vector<int> sorted_keys(const Map& m) {
  std::vector<int> out;
  out.reserve(m.size());
  for (const auto& [key, value] : m) out.push_back(key);
  return out;
}

template <typename Map>
const DistributionSet* find_in(const Map& m, int key) {
  auto it = m.find(key);
  return it == m.end() ? nullptr : &it->second;
}
}  // namespace

std::vector<int> Collector::distribution_classes() const {
  return sorted_keys(class_dists_);
}

std::vector<int> Collector::distribution_nodes() const {
  return sorted_keys(node_dists_);
}

const DistributionSet* Collector::class_distributions(int cls) const {
  return find_in(class_dists_, cls);
}

const DistributionSet* Collector::node_distributions(int node) const {
  return find_in(node_dists_, node);
}

void Collector::merge_distributions(const Collector& other) {
  if (!distributions_on_ || !other.distributions_on_) {
    throw std::logic_error(
        "Collector::merge_distributions: distributions not enabled");
  }
  for (const auto& [cls, d] : other.class_dists_) class_dists_[cls].merge(d);
  for (const auto& [node, d] : other.node_dists_) node_dists_[node].merge(d);
}

ClassCounts Collector::counts(int cls) const {
  auto it = by_class_.find(cls);
  return it == by_class_.end() ? ClassCounts{} : it->second;
}

ClassTimings Collector::timings(int cls) const {
  auto it = timings_.find(cls);
  return it == timings_.end() ? ClassTimings{} : it->second;
}

std::vector<int> Collector::classes() const {
  std::vector<int> out;
  out.reserve(by_class_.size());
  for (const auto& [cls, counts] : by_class_) out.push_back(cls);
  return out;
}

double Collector::overall_missed_work_rate() const noexcept {
  double total = 0.0, missed = 0.0;
  for (const auto& [cls, c] : by_class_) {
    total += c.work_total;
    missed += c.work_missed;
  }
  return total > 0.0 ? missed / total : 0.0;
}

std::uint64_t Collector::total_missed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [cls, c] : by_class_) n += c.missed;
  return n;
}

std::uint64_t Collector::total_finished() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [cls, c] : by_class_) n += c.finished;
  return n;
}

}  // namespace sda::metrics
