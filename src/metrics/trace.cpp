#include "src/metrics/trace.hpp"

#include <cstring>
#include <sstream>

namespace sda::metrics {

const char* to_string(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kSubmitted: return "submit";
    case TraceEvent::kStarted: return "start";
    case TraceEvent::kPreempted: return "preempt";
    case TraceEvent::kCompleted: return "done";
    case TraceEvent::kAborted: return "abort";
    case TraceEvent::kFailed: return "fail";
    case TraceEvent::kGlobalSubmitted: return "global-submit";
    case TraceEvent::kGlobalCompleted: return "global-done";
    case TraceEvent::kGlobalAborted: return "global-abort";
    case TraceEvent::kGlobalShed: return "global-shed";
  }
  return "?";
}

namespace {
void fnv_mix(std::uint64_t& h, const void* data, std::size_t len) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
}
}  // namespace

void Tracer::add(const TraceRecord& rec) {
  ++total_;
  fnv_mix(hash_, &rec.time, sizeof rec.time);
  const auto ev = static_cast<std::uint8_t>(rec.event);
  fnv_mix(hash_, &ev, sizeof ev);
  fnv_mix(hash_, &rec.task_id, sizeof rec.task_id);
  fnv_mix(hash_, &rec.run_id, sizeof rec.run_id);
  fnv_mix(hash_, &rec.node, sizeof rec.node);
  fnv_mix(hash_, &rec.deadline, sizeof rec.deadline);
  records_.push_back(rec);
  if (capacity_ != 0 && records_.size() > capacity_) records_.pop_front();
}

std::string Tracer::render() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  for (const TraceRecord& r : records_) {
    os << r.time << ' ' << to_string(r.event);
    if (r.task_id != 0) os << " task=" << r.task_id;
    if (r.run_id != 0) os << " run=" << r.run_id;
    if (r.node >= 0) os << " node=" << r.node;
    os << " dl=" << r.deadline << '\n';
  }
  return os.str();
}

void Tracer::clear() {
  records_.clear();
  total_ = 0;
  hash_ = 0xcbf29ce484222325ULL;
}

}  // namespace sda::metrics
