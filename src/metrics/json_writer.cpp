#include "src/metrics/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace sda::metrics {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already wrote its comma
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) os_ << ',';
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  os_ << '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elements_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  os_ << '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elements_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (!has_elements_.empty()) {
    if (has_elements_.back()) os_ << ',';
    has_elements_.back() = true;
  }
  os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os_.write(buf, res.ptr - buf);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_for_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

}  // namespace sda::metrics
