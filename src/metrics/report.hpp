// Aggregation of per-replication Collectors into confidence intervals.
//
// Each experiment data point runs R independent replications (the paper
// uses two one-million-unit runs); a Report combines the replications'
// per-class miss rates into t-based 95% confidence intervals.
#pragma once

#include <map>
#include <vector>

#include "src/metrics/collector.hpp"
#include "src/util/stats.hpp"

namespace sda::metrics {

/// Point estimate with uncertainty for one class in one experiment.
struct ClassSummary {
  int cls = 0;
  util::ConfidenceInterval miss_rate;
  util::ConfidenceInterval missed_work_rate;
  std::uint64_t finished_total = 0;  ///< pooled over replications
};

class Report {
 public:
  /// Folds one replication's collector into the report.
  void add_replication(const Collector& c);

  /// Number of replications added.
  std::size_t replications() const noexcept { return replications_; }

  /// Classes observed in any replication, ascending.
  std::vector<int> classes() const;

  /// Summary for one class (CIs over replication means).
  ClassSummary summary(int cls, double confidence = 0.95) const;

  /// CI for the system-wide missed-work fraction.
  util::ConfidenceInterval overall_missed_work(double confidence = 0.95) const;

  /// Fault retries / shed runs pooled over all replications.
  std::uint64_t global_retries_total() const noexcept {
    return global_retries_total_;
  }
  std::uint64_t shed_runs_total() const noexcept { return shed_runs_total_; }

 private:
  struct PerClass {
    std::vector<double> miss_rates;
    std::vector<double> missed_work_rates;
    std::uint64_t finished_total = 0;
  };
  std::map<int, PerClass> by_class_;
  std::vector<double> overall_missed_work_;
  std::size_t replications_ = 0;
  std::uint64_t global_retries_total_ = 0;
  std::uint64_t shed_runs_total_ = 0;
};

}  // namespace sda::metrics
