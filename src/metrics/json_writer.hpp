// Minimal streaming JSON writer shared by the telemetry exporters.
//
// No DOM, no allocation beyond the nesting stack: values stream straight
// to the ostream with commas managed per nesting level.  Doubles render in
// std::to_chars shortest round-trip form (never locale-dependent, never
// "1,5"); non-finite values become null, which every checker downstream
// treats as "absent".
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sda::metrics {

/// Escapes a string body per RFC 8259 (quotes not included).
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; the next value/begin_* call is its value.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void comma_for_value();

  std::ostream& os_;
  /// One frame per open container: true once the first element was
  /// written (the next element needs a leading comma).
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

}  // namespace sda::metrics
