// Task-class identifiers for per-class missed-deadline reporting.
//
// The paper reports MD separately for local tasks, simple subtasks of
// global tasks, and global tasks (further split by subtask count n in the
// non-homogeneous experiment, Figure 12).
#pragma once

#include <string>

namespace sda::metrics {

/// Well-known class ids. Global tasks with n parallel subtasks use
/// global_class(n) so Figure 12 can report each size separately.
inline constexpr int kLocalClass = 0;
inline constexpr int kSubtaskClass = 1;
inline constexpr int kGlobalClassBase = 100;

/// Class id for a global task of @p n subtasks (or any scenario tag >= 0).
constexpr int global_class(int n) noexcept { return kGlobalClassBase + n; }

/// True when @p cls identifies some global-task class.
constexpr bool is_global_class(int cls) noexcept {
  return cls >= kGlobalClassBase;
}

/// Default display name for a class id ("local", "subtask", "global(n=4)").
std::string default_class_name(int cls);

}  // namespace sda::metrics
