// Task-lifecycle tracing.
//
// A Tracer captures a bounded ring of lifecycle events (submit / start /
// preempt / complete / abort, plus global-task begin/end) for debugging and
// for *determinism golden tests*: the FNV-1a hash of the full event stream
// must be identical across runs with the same seed.  Tracing is opt-in and
// has zero cost when no tracer is attached.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "src/sim/event_queue.hpp"

namespace sda::metrics {

enum class TraceEvent : std::uint8_t {
  kSubmitted,       ///< task entered a node's queue
  kStarted,         ///< task entered service
  kPreempted,       ///< task preempted (preemptive-resume mode)
  kCompleted,       ///< task finished service
  kAborted,         ///< task aborted (local policy or external)
  kFailed,          ///< task killed by a fault (crash / transient failure)
  kGlobalSubmitted, ///< global run accepted by the process manager
  kGlobalCompleted, ///< global run finished
  kGlobalAborted,   ///< global run killed by the PM timer
  kGlobalShed,      ///< global run dropped by the recovery policy
};

/// Short lowercase tag, e.g. "start", "global-done".
const char* to_string(TraceEvent e) noexcept;

struct TraceRecord {
  sim::Time time = 0.0;
  TraceEvent event = TraceEvent::kSubmitted;
  std::uint64_t task_id = 0;  ///< 0 for global-run events
  std::uint64_t run_id = 0;   ///< 0 for local tasks
  int node = -1;              ///< -1 for global-run events
  double deadline = 0.0;      ///< virtual deadline (task) or real (global)
};

class Tracer {
 public:
  /// Keeps at most @p capacity most-recent records (0 = unbounded).
  explicit Tracer(std::size_t capacity = 0) : capacity_(capacity) {}

  void add(const TraceRecord& rec);

  const std::deque<TraceRecord>& records() const noexcept { return records_; }

  /// Total events ever added (>= records().size() once the ring wraps).
  std::uint64_t total() const noexcept { return total_; }

  /// FNV-1a hash over every event ever added (including evicted ones) —
  /// the determinism fingerprint.
  std::uint64_t fingerprint() const noexcept { return hash_; }

  /// Multi-line "time event task run node deadline" text rendering.
  std::string render() const;

  void clear();

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::uint64_t total_ = 0;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace sda::metrics
