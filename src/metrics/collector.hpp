// Per-class missed-deadline accounting for one simulation replication.
//
// Every task that reaches a terminal state (completed or aborted) after the
// warm-up period contributes one observation to its class:  missed iff it
// was aborted or finished after its *real* deadline.  Work-weighted
// accounting supports the paper's "fraction of missed work" discussion
// (§6.1): at load 0.5, DIV-1 loses on missed-task *count* but wins on
// missed *work*.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/process_manager.hpp"
#include "src/metrics/percentile.hpp"
#include "src/metrics/task_class.hpp"
#include "src/task/task.hpp"
#include "src/util/histogram.hpp"
#include "src/util/stats.hpp"

namespace sda::metrics {

/// Terminal counts for one task class.
struct ClassCounts {
  std::uint64_t finished = 0;  ///< completed or aborted (terminal)
  std::uint64_t missed = 0;    ///< aborted, or completed past real deadline
  std::uint64_t aborted = 0;   ///< subset of missed that never completed
  double work_total = 0.0;     ///< sum of ex over terminal tasks
  double work_missed = 0.0;    ///< sum of ex over missed tasks

  /// Fraction of missed deadlines (MD in the paper). 0 when empty.
  double miss_rate() const noexcept {
    return finished ? static_cast<double>(missed) /
                          static_cast<double>(finished)
                    : 0.0;
  }

  /// Fraction of work that went to tardy tasks. 0 when no work recorded.
  double missed_work_rate() const noexcept {
    return work_total > 0.0 ? work_missed / work_total : 0.0;
  }
};

/// Timing profile for one class (response time = completion - arrival;
/// tardiness = max(0, completion - real deadline), zero for on-time tasks).
/// Aborted-and-never-completed tasks contribute no response sample but do
/// contribute tardiness measured at their abort time.
struct ClassTimings {
  util::RunningStat response;
  util::RunningStat tardiness;
};

/// Optional per-class tardiness distribution (see
/// Collector::enable_tardiness_histograms).
struct TardinessProfile {
  bool enabled = false;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Log-bucketed response-time + tardiness pair kept per task class and per
/// node when Collector::enable_distributions() was called.  The shared
/// geometry makes sets from independent replications merge() exactly.
struct DistributionSet {
  LogHistogram response;
  LogHistogram tardiness;

  void merge(const DistributionSet& other) {
    response.merge(other.response);
    tardiness.merge(other.tardiness);
  }
};

class Collector {
 public:
  /// Observations for tasks that arrived before @p t are discarded
  /// (transient warm-up).
  void set_warmup(double t) noexcept { warmup_ = t; }
  double warmup() const noexcept { return warmup_; }

  /// Records a terminal local task or subtask.  Requires a terminal state
  /// (kCompleted or kAborted).
  void record_simple(const task::SimpleTask& t);

  /// Records a terminal global task run.
  void record_global(const core::GlobalTaskRecord& rec);

  /// Raw terminal record: class @p cls, arrived at @p arrival, @p missed
  /// its deadline (and was @p aborted before finishing), carrying @p work
  /// execution-time units.  @p response is the completion latency (< 0 for
  /// tasks that never completed), @p tardiness is max(0, lateness), and
  /// @p node is the execution node (-1 for whole global runs, which have
  /// no single node).
  void record(int cls, double arrival, bool missed, bool aborted, double work,
              double response = -1.0, double tardiness = 0.0, int node = -1);

  /// Counts for one class (zeros when the class was never seen).
  ClassCounts counts(int cls) const;

  /// Timing profile for one class (empty stats when never seen).
  ClassTimings timings(int cls) const;

  /// Turns on per-class tardiness histograms over [0, max_tardiness) with
  /// the given resolution; call before the run starts.
  void enable_tardiness_histograms(double max_tardiness = 50.0,
                                   std::size_t buckets = 500);

  /// Tardiness quantiles for a class; `enabled` is false when histograms
  /// were not enabled or the class was never seen.
  TardinessProfile tardiness_profile(int cls) const;

  // --- log-bucketed distribution telemetry --------------------------------
  /// Turns on per-class *and per-node* log-bucketed response/tardiness
  /// histograms (P50..P99.9 via metrics::summarize).  Call before the run;
  /// zero cost when off (one branch per record).
  void enable_distributions();
  bool distributions_enabled() const noexcept { return distributions_on_; }

  /// Classes / nodes with at least one recorded distribution sample.
  std::vector<int> distribution_classes() const;
  std::vector<int> distribution_nodes() const;

  /// Distribution pair for a class / node; nullptr when distributions are
  /// off or nothing was recorded there.
  const DistributionSet* class_distributions(int cls) const;
  const DistributionSet* node_distributions(int node) const;

  /// Merges another collector's distributions into this one (replication
  /// aggregation; the counting statistics are aggregated by Report
  /// instead).  Requires both collectors to have distributions enabled.
  void merge_distributions(const Collector& other);

  /// All classes seen, ascending.
  std::vector<int> classes() const;

  /// Work-weighted miss rate over *all* classes — the paper's "fraction of
  /// missed work".
  double overall_missed_work_rate() const noexcept;

  /// Total missed count over all classes (the "overall number of missed
  /// deadlines" the paper contrasts with missed work).
  std::uint64_t total_missed() const noexcept;
  std::uint64_t total_finished() const noexcept;

  // --- fault / recovery accounting (post-warmup global runs) --------------
  /// Fault retries summed over recorded global runs.
  std::uint64_t global_retries() const noexcept { return global_retries_; }
  /// Global runs dropped by the recovery policy.
  std::uint64_t shed_runs() const noexcept { return shed_runs_; }

 private:
  double warmup_ = 0.0;
  std::uint64_t global_retries_ = 0;
  std::uint64_t shed_runs_ = 0;
  std::map<int, ClassCounts> by_class_;
  std::map<int, ClassTimings> timings_;
  bool histograms_enabled_ = false;
  double hist_max_ = 50.0;
  std::size_t hist_buckets_ = 500;
  std::map<int, util::Histogram> tardiness_hist_;
  bool distributions_on_ = false;
  std::map<int, DistributionSet> class_dists_;
  std::map<int, DistributionSet> node_dists_;
};

}  // namespace sda::metrics
