#include "src/metrics/trace_export.hpp"

#include <fstream>
#include <map>
#include <stdexcept>

#include "src/metrics/json_writer.hpp"

namespace sda::metrics {

namespace {

/// Sim time -> trace_event ts (microseconds; 1 sim unit renders as 1 ms).
double to_us(double t) { return t * 1000.0; }

/// Emits the shared header fields of one traceEvents entry.
void event_head(JsonWriter& w, const char* ph, double time, int tid) {
  w.begin_object();
  w.kv("ph", ph);
  w.kv("ts", to_us(time));
  w.kv("pid", 1);
  w.kv("tid", tid);
}

void task_args(JsonWriter& w, const TraceRecord& rec) {
  w.key("args").begin_object();
  w.kv("task", rec.task_id);
  w.kv("run", rec.run_id);
  w.kv("deadline", rec.deadline);
  w.end_object();
}

/// A thread_name metadata record — this is what makes Perfetto show a
/// labelled track per node.
void thread_name(JsonWriter& w, int tid, const std::string& name) {
  w.begin_object();
  w.kv("ph", "M");
  w.kv("name", "thread_name");
  w.kv("pid", 1);
  w.kv("tid", tid);
  w.key("args").begin_object().kv("name", name).end_object();
  w.end_object();
}

const char* slice_end_tag(TraceEvent e) {
  switch (e) {
    case TraceEvent::kCompleted: return "complete";
    case TraceEvent::kPreempted: return "preempt";
    case TraceEvent::kAborted: return "abort";
    case TraceEvent::kFailed: return "fail";
    default: return "?";
  }
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, int node_count,
                        std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  for (int n = 0; n < node_count; ++n) {
    thread_name(w, n, "node " + std::to_string(n));
  }
  const int global_tid = node_count;
  thread_name(w, global_tid, "global runs");

  // Service slices are open from kStarted until the next terminal event of
  // the same task; a bounded ring can drop a start, in which case the
  // terminal event degrades to an instant.
  struct OpenSlice {
    double start = 0.0;
    int node = -1;
  };
  // Ordered so the leftover-slice sweep below emits in task-id order
  // (byte-identical output for identical traces).
  std::map<std::uint64_t, OpenSlice> open;

  double horizon = 0.0;
  for (const TraceRecord& rec : tracer.records()) {
    if (rec.time > horizon) horizon = rec.time;
    switch (rec.event) {
      case TraceEvent::kSubmitted:
        event_head(w, "i", rec.time, rec.node);
        w.kv("name", "submit");
        w.kv("s", "t");
        task_args(w, rec);
        w.end_object();
        break;

      case TraceEvent::kStarted:
        open[rec.task_id] = OpenSlice{rec.time, rec.node};
        // Subtasks step their run's flow when they enter service, so
        // Perfetto draws submit -> slices -> done arrows per run.
        if (rec.run_id != 0) {
          event_head(w, "t", rec.time, rec.node);
          w.kv("name", "run");
          w.kv("id", rec.run_id);
          w.end_object();
        }
        break;

      case TraceEvent::kCompleted:
      case TraceEvent::kPreempted:
      case TraceEvent::kAborted:
      case TraceEvent::kFailed: {
        const auto it = open.find(rec.task_id);
        if (it != open.end()) {
          event_head(w, "X", it->second.start, it->second.node);
          w.kv("dur", to_us(rec.time - it->second.start));
          w.kv("name",
               (rec.run_id != 0 ? "subtask " : "task ") +
                   std::to_string(rec.task_id));
          w.kv("cat", rec.run_id != 0 ? "subtask" : "local");
          w.key("args").begin_object();
          w.kv("task", rec.task_id);
          w.kv("run", rec.run_id);
          w.kv("deadline", rec.deadline);
          w.kv("end", slice_end_tag(rec.event));
          w.end_object();
          w.end_object();
          open.erase(it);
        } else {
          event_head(w, "i", rec.time, rec.node);
          w.kv("name", to_string(rec.event));
          w.kv("s", "t");
          task_args(w, rec);
          w.end_object();
        }
        break;
      }

      case TraceEvent::kGlobalSubmitted:
        event_head(w, "i", rec.time, global_tid);
        w.kv("name", "run submitted");
        w.kv("s", "p");
        task_args(w, rec);
        w.end_object();
        event_head(w, "s", rec.time, global_tid);
        w.kv("name", "run");
        w.kv("id", rec.run_id);
        w.end_object();
        break;

      case TraceEvent::kGlobalCompleted:
      case TraceEvent::kGlobalAborted:
      case TraceEvent::kGlobalShed:
        event_head(w, "i", rec.time, global_tid);
        w.kv("name", std::string("run ") + to_string(rec.event));
        w.kv("s", "p");
        task_args(w, rec);
        w.end_object();
        event_head(w, "f", rec.time, global_tid);
        w.kv("name", "run");
        w.kv("id", rec.run_id);
        w.kv("bp", "e");
        w.end_object();
        break;
    }
  }

  // Close slices still in service at the horizon (the run ended mid-leg).
  for (const auto& [task_id, slice] : open) {
    event_head(w, "X", slice.start, slice.node);
    w.kv("dur", to_us(horizon - slice.start));
    w.kv("name", "task " + std::to_string(task_id));
    w.kv("cat", "open");
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

void write_chrome_trace_file(const Tracer& tracer, int node_count,
                             const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
  write_chrome_trace(tracer, node_count, os);
}

}  // namespace sda::metrics
