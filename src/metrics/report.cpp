#include "src/metrics/report.hpp"

namespace sda::metrics {

void Report::add_replication(const Collector& c) {
  ++replications_;
  for (int cls : c.classes()) {
    const ClassCounts counts = c.counts(cls);
    PerClass& pc = by_class_[cls];
    pc.miss_rates.push_back(counts.miss_rate());
    pc.missed_work_rates.push_back(counts.missed_work_rate());
    pc.finished_total += counts.finished;
  }
  overall_missed_work_.push_back(c.overall_missed_work_rate());
  global_retries_total_ += c.global_retries();
  shed_runs_total_ += c.shed_runs();
}

std::vector<int> Report::classes() const {
  std::vector<int> out;
  out.reserve(by_class_.size());
  for (const auto& [cls, pc] : by_class_) out.push_back(cls);
  return out;
}

ClassSummary Report::summary(int cls, double confidence) const {
  ClassSummary s;
  s.cls = cls;
  auto it = by_class_.find(cls);
  if (it == by_class_.end()) return s;
  s.miss_rate = util::confidence_interval(it->second.miss_rates, confidence);
  s.missed_work_rate =
      util::confidence_interval(it->second.missed_work_rates, confidence);
  s.finished_total = it->second.finished_total;
  return s;
}

util::ConfidenceInterval Report::overall_missed_work(double confidence) const {
  return util::confidence_interval(overall_missed_work_, confidence);
}

}  // namespace sda::metrics
