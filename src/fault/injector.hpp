// Wires a FaultPlan into a live simulated system.
//
// arm() schedules every planned crash/recovery as engine events and
// installs per-node fault hooks: compute nodes sample transient subtask
// failures, link nodes sample message loss and extra delay.  All online
// sampling draws from one dedicated RNG stream, consumed in engine event
// order (the engine is single-threaded), so a run with faults is exactly
// as reproducible as one without.
//
// The injector only *kills* tasks; recovery (retry / failover / shed) is
// the process manager's RecoveryPolicy.  Local tasks on a crashed node
// fail terminally — they have no manager to resubmit them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/sched/node.hpp"
#include "src/sim/engine.hpp"
#include "src/util/rng.hpp"

namespace sda::fault {

class FaultInjector {
 public:
  /// @p nodes is indexed by node id; indices [0, compute_node_count) are
  /// compute nodes, the rest link nodes.  @p attempt_rng is the dedicated
  /// stream for online (per-service-attempt) sampling.
  FaultInjector(sim::Engine& engine, std::vector<sched::Node*> nodes,
                int compute_node_count, FaultPlan plan,
                util::Rng attempt_rng);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules the crash plan and installs the fault hooks. Call once,
  /// before the engine runs.
  void arm();

  const FaultPlan& plan() const noexcept { return plan_; }

  // --- statistics ---------------------------------------------------------
  /// Crash events that actually took a node down.
  std::uint64_t crashes() const noexcept { return crashes_; }
  /// Transient subtask failures injected on compute nodes.
  std::uint64_t transient_failures() const noexcept {
    return transient_failures_;
  }
  /// Message transmissions lost on link nodes.
  std::uint64_t messages_lost() const noexcept { return messages_lost_; }

 private:
  sim::Engine& engine_;
  std::vector<sched::Node*> nodes_;
  int compute_node_count_;
  FaultPlan plan_;
  util::Rng rng_;
  bool armed_ = false;

  std::uint64_t crashes_ = 0;
  std::uint64_t transient_failures_ = 0;
  std::uint64_t messages_lost_ = 0;
};

}  // namespace sda::fault
