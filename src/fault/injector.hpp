// Wires a FaultPlan into a live simulated system.
//
// arm() schedules every planned crash/recovery as engine events and
// installs per-node fault hooks: compute nodes sample transient subtask
// failures, link nodes sample message loss and extra delay.  All online
// sampling draws from *per-node* RNG substreams (split off the dedicated
// attempt stream in node-index order), consumed in that node's service
// order.  Per-node streams are what keep fault realizations identical
// between the serial engine and the sharded fabric: each node's draw
// sequence depends only on its own service history, never on how events
// from different nodes interleave globally.
//
// The injector only *kills* tasks; recovery (retry / failover / shed) is
// the process manager's RecoveryPolicy.  Local tasks on a crashed node
// fail terminally — they have no manager to resubmit them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/sched/node.hpp"
#include "src/sim/engine.hpp"
#include "src/util/rng.hpp"

namespace sda::fault {

class FaultInjector {
 public:
  /// @p nodes is indexed by node id; indices [0, compute_node_count) are
  /// compute nodes, the rest link nodes.  @p attempt_rng is the dedicated
  /// stream for online (per-service-attempt) sampling; it is split into
  /// one substream per node.
  FaultInjector(sim::Engine& engine, std::vector<sched::Node*> nodes,
                int compute_node_count, FaultPlan plan,
                util::Rng attempt_rng);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Sharded mode: schedule node i's crash/recovery events on
  /// @p engines[i] (its lane's shard engine) instead of the constructor's
  /// engine.  Must cover every node; call before arm().
  void set_lane_engines(std::vector<sim::Engine*> engines);

  /// Schedules the crash plan and installs the fault hooks. Call once,
  /// before the engine runs.
  void arm();

  const FaultPlan& plan() const noexcept { return plan_; }

  // --- statistics (sums over per-node counters; call after the run) -------
  /// Crash events that actually took a node down.
  std::uint64_t crashes() const noexcept { return sum(crashes_by_node_); }
  /// Transient subtask failures injected on compute nodes.
  std::uint64_t transient_failures() const noexcept {
    return sum(transient_by_node_);
  }
  /// Message transmissions lost on link nodes.
  std::uint64_t messages_lost() const noexcept { return sum(lost_by_node_); }

 private:
  static std::uint64_t sum(const std::vector<std::uint64_t>& v) noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t x : v) total += x;
    return total;
  }

  sim::Engine& engine_for(int node) noexcept {
    return lane_engines_.empty() ? engine_
                                 : *lane_engines_[static_cast<std::size_t>(
                                       node)];
  }

  sim::Engine& engine_;
  std::vector<sim::Engine*> lane_engines_;  // empty = serial mode
  std::vector<sched::Node*> nodes_;
  int compute_node_count_;
  FaultPlan plan_;
  /// One substream per node, split in node-index order; each is drawn
  /// only from that node's lane (thread-safe by lane affinity).
  std::vector<util::Rng> node_rngs_;
  bool armed_ = false;

  // Per-node so concurrent lanes never write one shared counter.
  std::vector<std::uint64_t> crashes_by_node_;
  std::vector<std::uint64_t> transient_by_node_;
  std::vector<std::uint64_t> lost_by_node_;
};

}  // namespace sda::fault
