#include "src/fault/injector.hpp"

#include <stdexcept>

namespace sda::fault {

FaultInjector::FaultInjector(sim::Engine& engine,
                             std::vector<sched::Node*> nodes,
                             int compute_node_count, FaultPlan plan,
                             util::Rng attempt_rng)
    : engine_(engine),
      nodes_(std::move(nodes)),
      compute_node_count_(compute_node_count),
      plan_(std::move(plan)),
      rng_(attempt_rng) {
  if (compute_node_count_ < 0 ||
      compute_node_count_ > static_cast<int>(nodes_.size())) {
    throw std::invalid_argument(
        "FaultInjector: compute_node_count out of range");
  }
  for (const auto* n : nodes_) {
    if (n == nullptr) throw std::invalid_argument("FaultInjector: null node");
  }
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
  armed_ = true;
  const FaultConfig& cfg = plan_.config();

  for (const CrashInterval& c : plan_.crashes()) {
    if (c.node >= static_cast<int>(nodes_.size())) {
      throw std::out_of_range("FaultInjector: crash plan names unknown node");
    }
    sched::Node* node = nodes_[static_cast<std::size_t>(c.node)];
    const bool discard = cfg.crash_discards_queue;
    engine_.at(c.down_at, [this, node, discard] {
      ++crashes_;
      node->crash(discard);
    });
    engine_.at(c.up_at, [node] { node->recover(); });
  }

  // Compute nodes: transient subtask failures.  One bernoulli per service
  // attempt; a failing attempt dies at a uniform point of its leg.
  if (cfg.subtask_failure_rate > 0.0) {
    for (int i = 0; i < compute_node_count_; ++i) {
      nodes_[static_cast<std::size_t>(i)]->set_fault_hook(
          [this, rate = cfg.subtask_failure_rate](
              const task::SimpleTask& t, double duration) {
            sched::Node::ServiceFault f;
            if (t.kind == task::TaskKind::kSubtask && rng_.bernoulli(rate)) {
              f.fail_after = rng_.uniform01() * duration;
              ++transient_failures_;
            }
            return f;
          });
    }
  }

  // Link nodes: per-transmission loss and/or exponential jitter.
  if (cfg.msg_loss_rate > 0.0 || cfg.msg_extra_delay_mean > 0.0) {
    for (int i = compute_node_count_;
         i < static_cast<int>(nodes_.size()); ++i) {
      nodes_[static_cast<std::size_t>(i)]->set_fault_hook(
          [this, loss = cfg.msg_loss_rate,
           jitter = cfg.msg_extra_delay_mean](const task::SimpleTask&,
                                              double duration) {
            sched::Node::ServiceFault f;
            if (jitter > 0.0) f.extra_delay = rng_.exponential(jitter);
            if (loss > 0.0 && rng_.bernoulli(loss)) {
              f.fail_after = rng_.uniform01() * (duration + f.extra_delay);
              ++messages_lost_;
            }
            return f;
          });
    }
  }
}

}  // namespace sda::fault
