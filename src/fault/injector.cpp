#include "src/fault/injector.hpp"

#include <stdexcept>

namespace sda::fault {

FaultInjector::FaultInjector(sim::Engine& engine,
                             std::vector<sched::Node*> nodes,
                             int compute_node_count, FaultPlan plan,
                             util::Rng attempt_rng)
    : engine_(engine),
      nodes_(std::move(nodes)),
      compute_node_count_(compute_node_count),
      plan_(std::move(plan)) {
  if (compute_node_count_ < 0 ||
      compute_node_count_ > static_cast<int>(nodes_.size())) {
    throw std::invalid_argument(
        "FaultInjector: compute_node_count out of range");
  }
  for (const auto* n : nodes_) {
    if (n == nullptr) throw std::invalid_argument("FaultInjector: null node");
  }
  node_rngs_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    node_rngs_.push_back(attempt_rng.split());
  }
  crashes_by_node_.assign(nodes_.size(), 0);
  transient_by_node_.assign(nodes_.size(), 0);
  lost_by_node_.assign(nodes_.size(), 0);
}

void FaultInjector::set_lane_engines(std::vector<sim::Engine*> engines) {
  if (armed_) {
    throw std::logic_error("FaultInjector::set_lane_engines: already armed");
  }
  if (engines.size() != nodes_.size()) {
    throw std::invalid_argument(
        "FaultInjector::set_lane_engines: one engine per node required");
  }
  for (const auto* e : engines) {
    if (e == nullptr) {
      throw std::invalid_argument(
          "FaultInjector::set_lane_engines: null engine");
    }
  }
  lane_engines_ = std::move(engines);
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
  armed_ = true;
  const FaultConfig& cfg = plan_.config();

  for (const CrashInterval& c : plan_.crashes()) {
    if (c.node >= static_cast<int>(nodes_.size())) {
      throw std::out_of_range("FaultInjector: crash plan names unknown node");
    }
    sched::Node* node = nodes_[static_cast<std::size_t>(c.node)];
    std::uint64_t* crash_count =
        &crashes_by_node_[static_cast<std::size_t>(c.node)];
    const bool discard = cfg.crash_discards_queue;
    sim::Engine& e = engine_for(c.node);
    e.at(c.down_at, [crash_count, node, discard] {
      ++*crash_count;
      node->crash(discard);
    });
    e.at(c.up_at, [node] { node->recover(); });
  }

  // Compute nodes: transient subtask failures.  One bernoulli per service
  // attempt; a failing attempt dies at a uniform point of its leg.
  if (cfg.subtask_failure_rate > 0.0) {
    for (int i = 0; i < compute_node_count_; ++i) {
      util::Rng* rng = &node_rngs_[static_cast<std::size_t>(i)];
      std::uint64_t* count = &transient_by_node_[static_cast<std::size_t>(i)];
      nodes_[static_cast<std::size_t>(i)]->set_fault_hook(
          [rng, count, rate = cfg.subtask_failure_rate](
              const task::SimpleTask& t, double duration) {
            sched::Node::ServiceFault f;
            if (t.kind == task::TaskKind::kSubtask && rng->bernoulli(rate)) {
              f.fail_after = rng->uniform01() * duration;
              ++*count;
            }
            return f;
          });
    }
  }

  // Link nodes: per-transmission loss and/or exponential jitter.
  if (cfg.msg_loss_rate > 0.0 || cfg.msg_extra_delay_mean > 0.0) {
    for (int i = compute_node_count_;
         i < static_cast<int>(nodes_.size()); ++i) {
      util::Rng* rng = &node_rngs_[static_cast<std::size_t>(i)];
      std::uint64_t* count = &lost_by_node_[static_cast<std::size_t>(i)];
      nodes_[static_cast<std::size_t>(i)]->set_fault_hook(
          [rng, count, loss = cfg.msg_loss_rate,
           jitter = cfg.msg_extra_delay_mean](const task::SimpleTask&,
                                              double duration) {
            sched::Node::ServiceFault f;
            if (jitter > 0.0) f.extra_delay = rng->exponential(jitter);
            if (loss > 0.0 && rng->bernoulli(loss)) {
              f.fail_after = rng->uniform01() * (duration + f.extra_delay);
              ++*count;
            }
            return f;
          });
    }
  }
}

}  // namespace sda::fault
