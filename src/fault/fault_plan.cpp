#include "src/fault/fault_plan.hpp"

#include <stdexcept>

namespace sda::fault {

FaultPlan FaultPlan::generate(const FaultConfig& config, int compute_nodes,
                              sim::Time horizon, util::Rng rng) {
  if (compute_nodes < 0) {
    throw std::invalid_argument("FaultPlan: compute_nodes must be >= 0");
  }
  if (config.crash_mean_uptime > 0.0 && config.crash_mean_downtime <= 0.0) {
    throw std::invalid_argument(
        "FaultPlan: crashes need a positive mean downtime");
  }
  FaultPlan plan;
  plan.config_ = config;
  if (config.crash_mean_uptime <= 0.0) return plan;
  for (int node = 0; node < compute_nodes; ++node) {
    util::Rng stream = rng.split();  // per-node substream (see header)
    sim::Time t = 0.0;
    for (;;) {
      t += stream.exponential(config.crash_mean_uptime);
      if (t >= horizon) break;
      CrashInterval interval;
      interval.node = node;
      interval.down_at = t;
      t += stream.exponential(config.crash_mean_downtime);
      interval.up_at = t;
      plan.crashes_.push_back(interval);
    }
  }
  return plan;
}

}  // namespace sda::fault
