// Deterministic fault model for one simulation replication.
//
// The paper's system (§3.2) is fail-free: nodes never crash, links never
// drop messages, and the only "failure" is a missed deadline.  This module
// adds the three fault classes a real distributed soft real-time system
// sees, all driven by a dedicated RNG stream so the workload draws are
// untouched and a run is bit-reproducible from its seed:
//
//   * node crash/recovery intervals — alternating exponential up/down
//     periods per compute node, materialized up front as a FaultPlan so
//     two runs with the same seed crash at identical instants;
//   * transient subtask failures — a service attempt dies at a uniform
//     point of its leg, wasting the work done (sampled online, one
//     bernoulli per attempt); and
//   * message loss / extra delay on link nodes — a transmission is lost
//     partway (and must be resent) or stretched by exponential jitter.
//
// FaultInjector (injector.hpp) wires a plan into the live nodes; the
// process manager's RecoveryPolicy decides what happens to the victims.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/util/rng.hpp"

namespace sda::fault {

/// Fault-model knobs.  All defaults are "off": with a default config the
/// plan is empty, no hooks fire, and the simulation is the paper's
/// fail-free system, bit for bit.
struct FaultConfig {
  /// Probability that one service attempt of a subtask on a compute node
  /// fails partway (the work done so far is lost).
  double subtask_failure_rate = 0.0;

  /// Mean up-time between crashes of one compute node (exponential);
  /// 0 = nodes never crash.
  double crash_mean_uptime = 0.0;
  /// Mean outage length (exponential). Required > 0 when crashes are on.
  double crash_mean_downtime = 0.0;
  /// On crash, queued tasks are failed too (true) or frozen in place until
  /// recovery (false).  The in-service task always fails.
  bool crash_discards_queue = true;

  /// Probability that one transmission over a link node is lost partway
  /// and must be retried.
  double msg_loss_rate = 0.0;
  /// Mean exponential extra latency added to each transmission over a
  /// link node; 0 = no jitter.
  double msg_extra_delay_mean = 0.0;

  /// True when any fault class is active.
  bool enabled() const noexcept {
    return subtask_failure_rate > 0.0 || crash_mean_uptime > 0.0 ||
           msg_loss_rate > 0.0 || msg_extra_delay_mean > 0.0;
  }
};

/// One planned outage of one node: down at `down_at`, back at `up_at`.
struct CrashInterval {
  int node = 0;
  sim::Time down_at = 0.0;
  sim::Time up_at = 0.0;
};

/// The materialized crash schedule plus the runtime fault rates.
///
/// Each node's outages come from its own split() substream, so the plan
/// for node i is independent of how many nodes exist — adding a node does
/// not perturb the others' crash times (the same stream-per-source
/// discipline the workload generators use).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Draws crash intervals for nodes [0, compute_nodes) over [0, horizon).
  /// Link nodes do not crash (they fail per-message instead).  @p rng is
  /// consumed; pass a dedicated substream.
  static FaultPlan generate(const FaultConfig& config, int compute_nodes,
                            sim::Time horizon, util::Rng rng);

  const FaultConfig& config() const noexcept { return config_; }

  /// Planned outages, grouped by node, each node's in time order.
  const std::vector<CrashInterval>& crashes() const noexcept {
    return crashes_;
  }

  /// True when the plan schedules no crashes and no runtime fault rates
  /// are active.
  bool empty() const noexcept {
    return crashes_.empty() && config_.subtask_failure_rate <= 0.0 &&
           config_.msg_loss_rate <= 0.0 && config_.msg_extra_delay_mean <= 0.0;
  }

 private:
  FaultConfig config_;
  std::vector<CrashInterval> crashes_;
};

}  // namespace sda::fault
