// Generic named-factory registry — the backend-registration pattern shared
// by the strategy registries (core/strategy.cpp) and the timer-queue
// backends (sim/timer_queue.cpp).
//
// One registry maps case-insensitive names to factories.  Two match modes:
// exact entries ("ud", "wheel") and prefix families ("div-", "gf-") whose
// suffix carries a parameter.  Lookup tries exact entries first, then
// prefix families, both in registration order; unknown names raise
// std::invalid_argument listing every registered spelling plus a
// Damerau-Levenshtein did-you-mean suggestion (util::closest_match).
// Duplicate names — compared after lowercasing — are rejected at add().
//
// The template lives in util (not core) because the layering DAG enforced
// by sda_analyze forbids sim -> core includes, and the timer-queue registry
// is a sim-layer client.  core/registry.hpp re-exports it as
// core::Registry<T> for strategy-side callers.
#pragma once

#include <algorithm>
#include <cctype>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/util/env.hpp"
#include "src/util/unique_fn.hpp"

namespace sda::util {

/// How a registered name matches lookups.
enum class NameMatch {
  kExact,   ///< case-insensitive whole-name equality
  kPrefix,  ///< name is a prefix; the rest is the entry's parameter
};

template <typename Product>
class Registry {
 public:
  /// Factory callback: receives the full lowercased name that matched (for
  /// parameterized families the suffix carries the parameter).  Returns
  /// nullptr to signal "name matched my prefix but the parameter does not
  /// parse" — lookup then reports an unknown name.
  using Factory = UniqueFn<std::unique_ptr<Product>(const std::string&)>;

  /// @p problem names the registry in error messages ("PSP",
  /// "timer-queue"); @p noun is the kind of thing registered ("strategy",
  /// "backend").
  Registry(std::string problem, std::string noun)
      : problem_(std::move(problem)), noun_(std::move(noun)) {}

  /// Registers @p factory under @p name.  @p display is what names() shows
  /// (e.g. "div-<x>"; defaults to the lowercased name).  Throws
  /// std::invalid_argument when the name is empty or already registered.
  void add(const std::string& name, Factory factory, NameMatch match,
           const std::string& display) {
    const std::string key = lower(name);
    if (key.empty()) {
      throw std::invalid_argument(problem_ + " registry: empty " + noun_ +
                                  " name");
    }
    for (const Entry& e : entries_) {
      if (e.key == key) {
        throw std::invalid_argument(problem_ + " " + noun_ + " '" + name +
                                    "' is already registered");
      }
    }
    entries_.push_back(Entry{key, display.empty() ? key : display, match,
                             std::move(factory)});
  }

  // Non-const: UniqueFn's call operator is non-const (it may own mutable
  // state), so lookups need mutable access to the stored factories.
  std::unique_ptr<Product> make(const std::string& name) {
    const std::string n = lower(name);
    for (Entry& e : entries_) {
      if (e.match == NameMatch::kExact && e.key == n) {
        if (auto made = e.factory(n)) return made;
      }
    }
    for (Entry& e : entries_) {
      if (e.match == NameMatch::kPrefix && n.rfind(e.key, 0) == 0 &&
          n.size() > e.key.size()) {
        if (auto made = e.factory(n)) return made;
      }
    }
    std::ostringstream os;
    os << "unknown " << problem_ << ' ' << noun_ << ": " << name
       << " (registered:";
    for (const Entry& e : entries_) os << ' ' << e.display;
    os << ')';
    std::vector<std::string> exact_names;
    for (const Entry& e : entries_) {
      if (e.match == NameMatch::kExact) exact_names.push_back(e.key);
    }
    const std::string suggestion = closest_match(n, exact_names);
    if (!suggestion.empty()) os << " — did you mean '" << suggestion << "'?";
    throw std::invalid_argument(os.str());
  }

  /// Display names in registration order (built-ins first).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.display);
    return out;
  }

 private:
  static std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    return s;
  }

  struct Entry {
    std::string key;      ///< lowercased name or prefix
    std::string display;  ///< what names() shows
    NameMatch match;
    Factory factory;
  };
  std::string problem_;
  std::string noun_;
  std::vector<Entry> entries_;
};

}  // namespace sda::util
