#include "src/util/flags.hpp"

#include <cstdlib>

namespace sda::util {

Flags::Flags(int argc, const char* const* argv) {
  bool only_positional = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (only_positional || arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      only_positional = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" form: consume the next token unless it is a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";  // valueless switch
    }
  }
}

bool Flags::has(const std::string& name) const {
  touched_[name] = true;
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  touched_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::get_double(const std::string& name, double fallback) const {
  touched_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  touched_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  touched_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (touched_.count(name) == 0) out.push_back(name);
  }
  return out;
}

}  // namespace sda::util
