// Annotated synchronization wrappers for Clang Thread Safety Analysis.
//
// std::mutex and friends carry no capability attributes, so code locking
// them is invisible to -Wthread-safety.  These zero-overhead wrappers
// (every method is an inline forward to the std:: primitive) restore the
// annotations:
//
//   util::Mutex      — std::mutex as a CAPABILITY("mutex")
//   util::LockGuard  — std::lock_guard-shaped SCOPED_CAPABILITY
//   util::CondVar    — std::condition_variable over util::Mutex; wait()
//                      REQUIRES the mutex, mirroring the std contract
//   util::ThreadRole — a *fake* capability (no runtime state) naming a
//                      thread that is the sole legal toucher of a set of
//                      fields.  Single-owner subsystems (the serve event
//                      loop, the journal writer, the admission
//                      controller) guard their state with a role instead
//                      of a mutex: the compiler then proves no method
//                      reaches owner-only state without being on an
//                      owner-entered path, at zero runtime cost.
//   util::RoleGuard  — scoped assumption of a ThreadRole, used at the
//                      public entry points of a single-owner class.
//
// Behavior is identical to the raw std:: primitives by construction; the
// wrappers only add compile-time attributes (and empty inline calls for
// the role pair, which any optimizer deletes).
#pragma once

#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.hpp"

namespace sda::util {

/// std::mutex with capability annotations.  Non-reentrant, like the
/// underlying primitive.
class SDA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SDA_ACQUIRE() { m_.lock(); }
  void unlock() SDA_RELEASE() { m_.unlock(); }
  bool try_lock() SDA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// std::lock_guard over util::Mutex, visible to the analysis as a scoped
/// capability.
class SDA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) SDA_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() SDA_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable bound to util::Mutex.  wait() REQUIRES the mutex —
/// exactly the std::condition_variable contract, now compiler-checked.
/// No predicate overload on purpose: the analysis treats lambdas as
/// separate functions, so a predicate reading guarded fields would warn;
/// callers write the explicit `while (!cond) cv.wait(mu);` loop instead,
/// which the analysis follows naturally.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases @p mu, blocks, and reacquires @p mu before
  /// returning.  Spurious wakeups possible, as with the std primitive.
  void wait(Mutex& mu) SDA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // still locked: ownership returns to the caller
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Fake capability naming a single owning thread.  assume()/release()
/// are empty: the "lock" exists only in the type system.  Guarding
/// fields with a role documents *and enforces* that only owner-entered
/// call paths touch them — the compile-time version of "this class is
/// single-threaded by contract".
///
/// Methods are const so const accessors of the owning class can assume
/// the role; mutability of the guarded fields is what matters, not of
/// the role object itself.
class SDA_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void assume() const SDA_ACQUIRE() {}
  void release() const SDA_RELEASE() {}
};

/// Scoped role assumption for the public entry points of a single-owner
/// class.  Compiles to nothing.
class SDA_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(const ThreadRole& role) SDA_ACQUIRE(role)
      : role_(role) {
    role_.assume();
  }
  ~RoleGuard() SDA_RELEASE() { role_.release(); }

  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  const ThreadRole& role_;
};

}  // namespace sda::util
