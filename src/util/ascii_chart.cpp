#include "src/util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sda::util {

void AsciiChart::add(Series s) { series_.push_back(std::move(s)); }

void AsciiChart::set_labels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

void AsciiChart::set_y_range(double lo, double hi) {
  fixed_y_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string AsciiChart::render() const {
  double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      any = true;
      x_lo = std::min(x_lo, s.xs[i]);
      x_hi = std::max(x_hi, s.xs[i]);
      y_lo = std::min(y_lo, s.ys[i]);
      y_hi = std::max(y_hi, s.ys[i]);
    }
  }
  if (!any) return "(no data)\n";
  if (fixed_y_) {
    y_lo = y_lo_;
    y_hi = y_hi_;
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;
  if (y_hi <= y_lo) y_hi = y_lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  auto plot = [&](double x, double y, char m) {
    if (!std::isfinite(x) || !std::isfinite(y)) return;
    int col = static_cast<int>(std::lround((x - x_lo) / (x_hi - x_lo) *
                                           (width_ - 1)));
    int row = static_cast<int>(std::lround((y - y_lo) / (y_hi - y_lo) *
                                           (height_ - 1)));
    col = std::clamp(col, 0, width_ - 1);
    row = std::clamp(row, 0, height_ - 1);
    grid[static_cast<std::size_t>(height_ - 1 - row)]
        [static_cast<std::size_t>(col)] = m;
  };

  for (const auto& s : series_) {
    // Linear interpolation between consecutive points gives a line feel.
    for (std::size_t i = 0; i + 1 < s.xs.size() && i + 1 < s.ys.size(); ++i) {
      const int steps = width_;
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        plot(s.xs[i] + t * (s.xs[i + 1] - s.xs[i]),
             s.ys[i] + t * (s.ys[i + 1] - s.ys[i]), '.');
      }
    }
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      plot(s.xs[i], s.ys[i], s.marker);
    }
  }

  std::ostringstream os;
  if (!y_label_.empty()) os << y_label_ << '\n';
  char buf[32];
  std::snprintf(buf, sizeof buf, "%8.3g", y_hi);
  os << buf << " +" << grid.front() << '\n';
  for (int r = 1; r < height_ - 1; ++r) {
    os << "         |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  std::snprintf(buf, sizeof buf, "%8.3g", y_lo);
  os << buf << " +" << grid.back() << '\n';
  os << "          ";
  std::snprintf(buf, sizeof buf, "%-8.3g", x_lo);
  std::string bottom(static_cast<std::size_t>(width_) + 1, '-');
  bottom.front() = '+';
  os << bottom << '\n';
  os << "          " << buf;
  std::snprintf(buf, sizeof buf, "%8.3g", x_hi);
  os << std::string(static_cast<std::size_t>(std::max(0, width_ - 16)), ' ')
     << buf;
  if (!x_label_.empty()) os << "  " << x_label_;
  os << '\n';
  os << "  legend: ";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) os << "   ";
    os << series_[i].marker << " = " << series_[i].name;
  }
  os << '\n';
  return os.str();
}

}  // namespace sda::util
