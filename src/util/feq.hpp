// Approved floating-point comparison helpers.
//
// Exact `==`/`!=` on floating-point values is banned by sda-lint
// (rule FLOAT_EQ): simulation timestamps and deadlines are sums of
// doubles, so two quantities that are mathematically equal routinely
// differ in the last few ulps.  This header is the one sanctioned home
// for float equality — compare through feq()/fne() with an explicit
// tolerance and the intent is visible at the call site.
//
// The default epsilon is absolute.  Deadlines, times, and rates in this
// repo are O(1)..O(1e6) with double precision (~1e-16 relative), so an
// absolute 1e-9 separates "same value, different rounding" from "truly
// different" across the whole range the simulator produces.  Pass a
// scaled epsilon for quantities far outside it.
#pragma once

#include <cmath>

namespace sda::util {

inline constexpr double kFeqEps = 1e-9;

/// True when a and b differ by at most eps (absolute).
inline bool feq(double a, double b, double eps = kFeqEps) noexcept {
  return std::fabs(a - b) <= eps;
}

/// True when a and b differ by more than eps (absolute).
inline bool fne(double a, double b, double eps = kFeqEps) noexcept {
  return !feq(a, b, eps);
}

}  // namespace sda::util
