#include "src/util/thread_pool.hpp"

#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "src/util/env.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace sda::util {

namespace {
/// True while the current thread is executing a parallel_for body; nested
/// parallel_for calls then run inline instead of deadlocking on the
/// caller-serialization mutex.
thread_local bool t_inside_pool_body = false;
}  // namespace

struct ThreadPool::Impl {
  /// One in-flight parallel_for.  Heap-held via shared_ptr so a worker
  /// finishing the last item can release its reference after the caller
  /// has already returned and destroyed its own.
  struct Batch {
    Batch(std::size_t count, FunctionRef<void(std::size_t)> b)
        : n(count), body(b) {}

    std::size_t n;
    /// Non-owning view of the caller's body; the caller blocks inside
    /// parallel_for until done == n, so the referent outlives the batch.
    FunctionRef<void(std::size_t)> body;
    // done/error are guarded by Impl::m.  (A nested struct cannot name
    // the enclosing instance's member in SDA_GUARDED_BY; every access
    // below happens inside functions that carry SDA_REQUIRES(m).)
    std::size_t done = 0;
    std::exception_ptr error;  // first failure
  };

  explicit Impl(unsigned total) : total_threads(total < 1 ? 1 : total) {
    const unsigned workers =
        total_threads > 0 ? total_threads - 1 : 0;
    queues.resize(workers + 1);  // last queue belongs to the caller
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~Impl() {
    {
      LockGuard lk(m);
      shutdown = true;
    }
    work_cv.notify_all();
    for (std::thread& t : threads) t.join();
  }

  /// Pops from the participant's own queue (LIFO — freshest work, warm
  /// caches), else steals the oldest item from another queue (FIFO).
  /// Returns false when no work exists anywhere.
  bool take(std::size_t self, std::size_t& out) SDA_REQUIRES(m) {
    if (!queues[self].empty()) {
      out = queues[self].back();
      queues[self].pop_back();
      --queued;
      return true;
    }
    for (std::size_t i = 1; i < queues.size(); ++i) {
      auto& victim = queues[(self + i) % queues.size()];
      if (!victim.empty()) {
        out = victim.front();
        victim.pop_front();
        --queued;
        return true;
      }
    }
    return false;
  }

  /// Executes one item and does the end-of-batch bookkeeping.
  /// Called with m held; drops it around the body, returns with it held.
  void run_one(const std::shared_ptr<Batch>& batch, std::size_t index)
      SDA_REQUIRES(m) {
    m.unlock();
    std::exception_ptr err;
    t_inside_pool_body = true;
    try {
      batch->body(index);
    } catch (...) {
      err = std::current_exception();
    }
    t_inside_pool_body = false;
    m.lock();
    if (err && !batch->error) batch->error = err;
    if (++batch->done == batch->n) {
      current.reset();
      done_cv.notify_all();
    }
  }

  void worker_loop(unsigned worker_index) SDA_EXCLUDES(m) {
    const std::size_t self = worker_index;  // queue slot
    m.lock();
    for (;;) {
      while (!(shutdown || (current && queued > 0))) work_cv.wait(m);
      if (shutdown) break;
      const std::shared_ptr<Batch> batch = current;
      std::size_t index;
      while (batch->done < batch->n && take(self, index)) {
        run_one(batch, index);
      }
      // No work left for us; wait for the next batch (or more stolen-back
      // splits — seeding is the only producer, so "queued > 0" suffices).
    }
    m.unlock();
  }

  void parallel_for(std::size_t n, FunctionRef<void(std::size_t)> body)
      SDA_EXCLUDES(m, callers_m) {
    if (n == 0) return;
    // Sequential modes: no workers, trivial batch, or a nested call from
    // inside a body (which must not wait on callers_m).
    if (threads.empty() || n == 1 || t_inside_pool_body) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    LockGuard serialize(callers_m);
    auto batch = std::make_shared<Batch>(n, body);
    const std::size_t caller_slot = queues.size() - 1;
    m.lock();
    // Seed every participant with a contiguous slice, caller included.
    // Own-queue LIFO then makes each participant chew through its slice
    // back-to-front while thieves take from the front — minimal overlap.
    const std::size_t k = queues.size();
    for (std::size_t slot = 0, next = 0; slot < k; ++slot) {
      const std::size_t share = n / k + (slot < n % k ? 1 : 0);
      for (std::size_t j = 0; j < share; ++j) {
        queues[slot].push_back(next++);
      }
    }
    queued = n;
    current = batch;
    work_cv.notify_all();
    std::size_t index;
    for (;;) {
      if (take(caller_slot, index)) {
        run_one(batch, index);
        continue;
      }
      if (batch->done == batch->n) break;
      while (!(batch->done == batch->n || queued > 0)) done_cv.wait(m);
    }
    // current was reset by whoever finished the last item.
    const std::exception_ptr err = batch->error;
    m.unlock();
    if (err) std::rethrow_exception(err);
  }

  const unsigned total_threads;
  std::vector<std::thread> threads;

  Mutex callers_m;  // serializes top-level parallel_for calls

  Mutex m;             // guards the batch state below
  CondVar work_cv;     // workers sleep here
  CondVar done_cv;     // the caller sleeps here
  std::vector<std::deque<std::size_t>> queues SDA_GUARDED_BY(m);
  std::size_t queued SDA_GUARDED_BY(m) = 0;  // items in queues, untaken
  std::shared_ptr<Batch> current SDA_GUARDED_BY(m);
  bool shutdown SDA_GUARDED_BY(m) = false;
};

ThreadPool::ThreadPool(unsigned threads)
    : impl_(std::make_unique<Impl>(threads)) {}

ThreadPool::~ThreadPool() = default;

unsigned ThreadPool::threads() const noexcept { return impl_->total_threads; }

void ThreadPool::parallel_for(std::size_t n,
                              FunctionRef<void(std::size_t)> body) {
  impl_->parallel_for(n, body);
}

unsigned ThreadPool::configured_threads() noexcept {
  const std::int64_t requested = env_int("SDA_THREADS", 0);
  if (requested >= 1) {
    return static_cast<unsigned>(requested > 512 ? 512 : requested);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(configured_threads());
  return pool;
}

}  // namespace sda::util
