#include "src/util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/env.hpp"

namespace sda::util {

namespace {
/// True while the current thread is executing a parallel_for body; nested
/// parallel_for calls then run inline instead of deadlocking on the
/// caller-serialization mutex.
thread_local bool t_inside_pool_body = false;
}  // namespace

struct ThreadPool::Impl {
  /// One in-flight parallel_for.  Heap-held via shared_ptr so a worker
  /// finishing the last item can release its reference after the caller
  /// has already returned and destroyed its own.
  struct Batch {
    Batch(std::size_t count, FunctionRef<void(std::size_t)> b)
        : n(count), body(b) {}

    std::size_t n;
    /// Non-owning view of the caller's body; the caller blocks inside
    /// parallel_for until done == n, so the referent outlives the batch.
    FunctionRef<void(std::size_t)> body;
    std::size_t done = 0;                 // guarded by Impl::m
    std::exception_ptr error;             // first failure, guarded by Impl::m
  };

  explicit Impl(unsigned total) : total_threads(total < 1 ? 1 : total) {
    const unsigned workers =
        total_threads > 0 ? total_threads - 1 : 0;
    queues.resize(workers + 1);  // last queue belongs to the caller
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(m);
      shutdown = true;
    }
    work_cv.notify_all();
    for (std::thread& t : threads) t.join();
  }

  /// Pops from the participant's own queue (LIFO — freshest work, warm
  /// caches), else steals the oldest item from another queue (FIFO).
  /// Requires Impl::m held.  Returns false when no work exists anywhere.
  bool take(std::size_t self, std::size_t& out) {
    if (!queues[self].empty()) {
      out = queues[self].back();
      queues[self].pop_back();
      --queued;
      return true;
    }
    for (std::size_t i = 1; i < queues.size(); ++i) {
      auto& victim = queues[(self + i) % queues.size()];
      if (!victim.empty()) {
        out = victim.front();
        victim.pop_front();
        --queued;
        return true;
      }
    }
    return false;
  }

  /// Executes one item and does the end-of-batch bookkeeping.
  /// Called with @p lk held; returns with it held.
  void run_one(std::unique_lock<std::mutex>& lk,
               const std::shared_ptr<Batch>& batch, std::size_t index) {
    lk.unlock();
    std::exception_ptr err;
    t_inside_pool_body = true;
    try {
      batch->body(index);
    } catch (...) {
      err = std::current_exception();
    }
    t_inside_pool_body = false;
    lk.lock();
    if (err && !batch->error) batch->error = err;
    if (++batch->done == batch->n) {
      current.reset();
      done_cv.notify_all();
    }
  }

  void worker_loop(unsigned worker_index) {
    const std::size_t self = worker_index;  // queue slot
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      work_cv.wait(lk, [&] { return shutdown || (current && queued > 0); });
      if (shutdown) return;
      const std::shared_ptr<Batch> batch = current;
      std::size_t index;
      while (batch->done < batch->n && take(self, index)) {
        run_one(lk, batch, index);
      }
      // No work left for us; wait for the next batch (or more stolen-back
      // splits — seeding is the only producer, so "queued > 0" suffices).
    }
  }

  void parallel_for(std::size_t n, FunctionRef<void(std::size_t)> body) {
    if (n == 0) return;
    // Sequential modes: no workers, trivial batch, or a nested call from
    // inside a body (which must not wait on callers_m).
    if (threads.empty() || n == 1 || t_inside_pool_body) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::lock_guard<std::mutex> serialize(callers_m);
    auto batch = std::make_shared<Batch>(n, body);
    const std::size_t caller_slot = queues.size() - 1;
    std::unique_lock<std::mutex> lk(m);
    // Seed every participant with a contiguous slice, caller included.
    // Own-queue LIFO then makes each participant chew through its slice
    // back-to-front while thieves take from the front — minimal overlap.
    const std::size_t k = queues.size();
    for (std::size_t slot = 0, next = 0; slot < k; ++slot) {
      const std::size_t share = n / k + (slot < n % k ? 1 : 0);
      for (std::size_t j = 0; j < share; ++j) {
        queues[slot].push_back(next++);
      }
    }
    queued = n;
    current = batch;
    work_cv.notify_all();
    std::size_t index;
    for (;;) {
      if (take(caller_slot, index)) {
        run_one(lk, batch, index);
        continue;
      }
      if (batch->done == batch->n) break;
      done_cv.wait(lk, [&] { return batch->done == batch->n || queued > 0; });
    }
    // current was reset by whoever finished the last item.
    const std::exception_ptr err = batch->error;
    lk.unlock();
    if (err) std::rethrow_exception(err);
  }

  const unsigned total_threads;
  std::vector<std::thread> threads;

  std::mutex callers_m;  // serializes top-level parallel_for calls

  std::mutex m;  // guards everything below
  std::condition_variable work_cv;  // workers sleep here
  std::condition_variable done_cv;  // the caller sleeps here
  std::vector<std::deque<std::size_t>> queues;
  std::size_t queued = 0;  // items sitting in queues (not yet taken)
  std::shared_ptr<Batch> current;
  bool shutdown = false;
};

ThreadPool::ThreadPool(unsigned threads)
    : impl_(std::make_unique<Impl>(threads)) {}

ThreadPool::~ThreadPool() = default;

unsigned ThreadPool::threads() const noexcept { return impl_->total_threads; }

void ThreadPool::parallel_for(std::size_t n,
                              FunctionRef<void(std::size_t)> body) {
  impl_->parallel_for(n, body);
}

unsigned ThreadPool::configured_threads() noexcept {
  const std::int64_t requested = env_int("SDA_THREADS", 0);
  if (requested >= 1) {
    return static_cast<unsigned>(requested > 512 ? 512 : requested);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(configured_threads());
  return pool;
}

}  // namespace sda::util
