// Fixed-size work-stealing thread pool for experiment fan-out.
//
// Replications and sweep cells are fully independent simulations, so the
// only parallel structure the repo needs is "run these N closures, any
// order, tell me when all are done" — parallel_for().  Work distribution
// is work-stealing: each participant (worker threads plus the calling
// thread, which always helps) owns a queue seeded with a contiguous slice
// of the iteration space, pops its own work LIFO, and steals FIFO from
// the others when it runs dry.  Items here are entire simulation runs
// (milliseconds to seconds each), so queue operations are deliberately
// simple — one pool mutex — rather than lock-free; the steal structure is
// what matters for load balance, not nanosecond pop latency.
//
// Determinism: parallel_for only controls *where* closures run.  Callers
// keep results deterministic by writing into preallocated slots indexed
// by the closure argument and folding those slots in index order — the
// runner and sweep do exactly that, which is why pool size never changes
// a simulated number.
//
// Sizing: ThreadPool::shared() is sized once per process from
// SDA_THREADS when set (>= 1; 1 = strictly sequential, closures run
// inline on the caller in index order) and hardware_concurrency()
// otherwise, so replication fan-out can never oversubscribe the host the
// way the old thread-per-replication spawn did.
//
// Locking discipline is compiler-checked: the implementation uses the
// annotated util::Mutex / util::CondVar wrappers (src/util/mutex.hpp),
// so Clang's -Wthread-safety proves every access to the batch state
// holds the pool mutex (see DESIGN.md, "Static analysis architecture").
#pragma once

#include <cstddef>
#include <memory>

#include "src/util/function_ref.hpp"

namespace sda::util {

class ThreadPool {
 public:
  /// Creates a pool with @p threads total participants (including the
  /// calling thread): threads - 1 workers are spawned.  0 and 1 both mean
  /// "no workers": parallel_for runs inline, strictly sequentially.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (always >= 1).
  unsigned threads() const noexcept;

  /// Runs body(0) ... body(n-1), each exactly once, in unspecified order
  /// and concurrency, returning when all have finished.  The calling
  /// thread participates.  Concurrent calls from different threads are
  /// serialized; a nested call from inside a body runs inline (no
  /// deadlock, no extra parallelism).  If bodies throw, the first
  /// exception is rethrown here after every item has still been run.
  void parallel_for(std::size_t n, FunctionRef<void(std::size_t)> body);

  /// Process-wide pool sized from the environment (see configured_threads).
  /// Created on first use; shared by run_experiment and sweep.
  static ThreadPool& shared();

  /// SDA_THREADS when set (clamped to [1, 512]), else
  /// hardware_concurrency() (>= 1).
  static unsigned configured_threads() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sda::util
