// Terminal line charts for the figure benches.
//
// Each bench regenerates one figure from the paper.  Besides the numeric
// table, it renders the series as an ASCII scatter/line chart so the *shape*
// (orderings, crossovers, flattening) can be compared with the paper's plot
// at a glance.
#pragma once

#include <string>
#include <vector>

namespace sda::util {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  char marker = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Renders series onto a fixed character grid with axes and a legend.
class AsciiChart {
 public:
  AsciiChart(int width = 72, int height = 20) : width_(width), height_(height) {}

  /// Adds a series; points with non-finite coordinates are skipped.
  void add(Series s);

  /// Optional axis labels.
  void set_labels(std::string x_label, std::string y_label);

  /// Forces the y-axis range instead of auto-scaling to the data.
  void set_y_range(double lo, double hi);

  /// Renders the chart. Later series overwrite earlier ones on collisions.
  std::string render() const;

 private:
  int width_, height_;
  std::vector<Series> series_;
  std::string x_label_, y_label_;
  bool fixed_y_ = false;
  double y_lo_ = 0.0, y_hi_ = 1.0;
};

}  // namespace sda::util
