#include "src/util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <sstream>

extern "C" char** environ;

namespace sda::util {

namespace {
/// Every SDA_* variable a binary in this repo reads.  Keep in sync with the
/// header comment above and docs/EXPERIMENTS.md.
constexpr const char* kKnownSdaVars[] = {
    "SDA_SIM_TIME", "SDA_REPS",    "SDA_WARMUP",   "SDA_SEED",
    "SDA_FULL",     "SDA_THREADS", "SDA_VALIDATE",
};
}  // namespace

double env_double(const char* name, double fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && end != v) ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && end != v) ? parsed : fallback;
}

bool env_flag(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

std::string BenchEnv::describe() const {
  std::ostringstream os;
  os << "sim_time=" << sim_time << " x " << replications
     << " replications, warmup=" << warmup_fraction * 100 << "%, seed=" << seed;
  return os.str();
}

std::vector<std::string> unknown_sda_env() {
  std::vector<std::string> out;
  if (environ == nullptr) return out;
  for (char** p = environ; *p != nullptr; ++p) {
    const char* entry = *p;
    if (std::strncmp(entry, "SDA_", 4) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    const std::string name =
        eq != nullptr ? std::string(entry, eq) : std::string(entry);
    if (name.rfind("SDA_TEST_", 0) == 0) continue;
    bool known = false;
    for (const char* k : kKnownSdaVars) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (!known) out.push_back(name);
  }
  return out;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  auto low = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  const std::size_t n = a.size(), m = b.size();
  // Three rolling rows are enough for the transposition lookback.
  std::vector<std::size_t> prev2(m + 1), prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const bool eq = low(a[i - 1]) == low(b[j - 1]);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + (eq ? 0 : 1)});
      if (i > 1 && j > 1 && low(a[i - 1]) == low(b[j - 2]) &&
          low(a[i - 2]) == low(b[j - 1])) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string closest_match(const std::string& name,
                          const std::vector<std::string>& candidates) {
  const std::size_t budget = std::max<std::size_t>(1, name.size() / 3);
  std::string best;
  std::size_t best_d = budget + 1;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best_d <= budget ? best : std::string();
}

void warn_unknown_sda_env() noexcept {
  static bool warned = false;
  if (warned) return;
  warned = true;
  try {
    const std::vector<std::string> known(std::begin(kKnownSdaVars),
                                         std::end(kKnownSdaVars));
    for (const std::string& name : unknown_sda_env()) {
      const std::string suggestion = closest_match(name, known);
      std::fprintf(stderr,
                   "WARNING: unknown environment variable %s (known knobs: "
                   "SDA_SIM_TIME SDA_REPS SDA_WARMUP SDA_SEED SDA_FULL "
                   "SDA_THREADS SDA_VALIDATE)%s%s — ignored\n",
                   name.c_str(),
                   suggestion.empty() ? "" : "; did you mean ",
                   suggestion.c_str());
    }
  } catch (...) {
    // Allocation failure while warning must not break the bench itself.
  }
}

BenchEnv bench_env() noexcept {
  warn_unknown_sda_env();
  BenchEnv e;
  if (env_flag("SDA_FULL")) {
    e.sim_time = 1e6;  // the paper's run length
    e.replications = 2;
  }
  e.sim_time = env_double("SDA_SIM_TIME", e.sim_time);
  e.replications = static_cast<int>(env_int("SDA_REPS", e.replications));
  e.warmup_fraction = env_double("SDA_WARMUP", e.warmup_fraction);
  e.seed = static_cast<std::uint64_t>(env_int("SDA_SEED", static_cast<std::int64_t>(e.seed)));
  return e;
}

}  // namespace sda::util
