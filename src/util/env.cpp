#include "src/util/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

extern "C" char** environ;

namespace sda::util {

namespace {
/// Every SDA_* variable a binary in this repo reads.  Keep in sync with the
/// header comment above and docs/EXPERIMENTS.md.
constexpr const char* kKnownSdaVars[] = {
    "SDA_SIM_TIME", "SDA_REPS",    "SDA_WARMUP",   "SDA_SEED",
    "SDA_FULL",     "SDA_THREADS", "SDA_VALIDATE",
};
}  // namespace

double env_double(const char* name, double fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && end != v) ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && end != v) ? parsed : fallback;
}

bool env_flag(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

std::string BenchEnv::describe() const {
  std::ostringstream os;
  os << "sim_time=" << sim_time << " x " << replications
     << " replications, warmup=" << warmup_fraction * 100 << "%, seed=" << seed;
  return os.str();
}

std::vector<std::string> unknown_sda_env() {
  std::vector<std::string> out;
  if (environ == nullptr) return out;
  for (char** p = environ; *p != nullptr; ++p) {
    const char* entry = *p;
    if (std::strncmp(entry, "SDA_", 4) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    const std::string name =
        eq != nullptr ? std::string(entry, eq) : std::string(entry);
    if (name.rfind("SDA_TEST_", 0) == 0) continue;
    bool known = false;
    for (const char* k : kKnownSdaVars) {
      if (name == k) {
        known = true;
        break;
      }
    }
    if (!known) out.push_back(name);
  }
  return out;
}

void warn_unknown_sda_env() noexcept {
  static bool warned = false;
  if (warned) return;
  warned = true;
  try {
    for (const std::string& name : unknown_sda_env()) {
      std::fprintf(stderr,
                   "WARNING: unknown environment variable %s (known knobs: "
                   "SDA_SIM_TIME SDA_REPS SDA_WARMUP SDA_SEED SDA_FULL "
                   "SDA_THREADS SDA_VALIDATE) — ignored\n",
                   name.c_str());
    }
  } catch (...) {
    // Allocation failure while warning must not break the bench itself.
  }
}

BenchEnv bench_env() noexcept {
  warn_unknown_sda_env();
  BenchEnv e;
  if (env_flag("SDA_FULL")) {
    e.sim_time = 1e6;  // the paper's run length
    e.replications = 2;
  }
  e.sim_time = env_double("SDA_SIM_TIME", e.sim_time);
  e.replications = static_cast<int>(env_int("SDA_REPS", e.replications));
  e.warmup_fraction = env_double("SDA_WARMUP", e.warmup_fraction);
  e.seed = static_cast<std::uint64_t>(env_int("SDA_SEED", static_cast<std::int64_t>(e.seed)));
  return e;
}

}  // namespace sda::util
