#include "src/util/env.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

namespace sda::util {

double env_double(const char* name, double fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && end != v) ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && end != v) ? parsed : fallback;
}

bool env_flag(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "yes") == 0 || std::strcmp(v, "on") == 0;
}

std::string BenchEnv::describe() const {
  std::ostringstream os;
  os << "sim_time=" << sim_time << " x " << replications
     << " replications, warmup=" << warmup_fraction * 100 << "%, seed=" << seed;
  return os.str();
}

BenchEnv bench_env() noexcept {
  BenchEnv e;
  if (env_flag("SDA_FULL")) {
    e.sim_time = 1e6;  // the paper's run length
    e.replications = 2;
  }
  e.sim_time = env_double("SDA_SIM_TIME", e.sim_time);
  e.replications = static_cast<int>(env_int("SDA_REPS", e.replications));
  e.warmup_fraction = env_double("SDA_WARMUP", e.warmup_fraction);
  e.seed = static_cast<std::uint64_t>(env_int("SDA_SEED", static_cast<std::int64_t>(e.seed)));
  return e;
}

}  // namespace sda::util
