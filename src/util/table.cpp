#include "src/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace sda::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == '%' || c == 'e' || c == 'E' || c == ' ' ||
          c == '\xc2' || c == '\xb1')) {  // UTF-8 for the +/- sign
      return false;
    }
  }
  return true;
}

// Width in display columns; the UTF-8 +/- sign is 2 bytes but 1 column.
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if ((c & 0xc0) != 0x80) ++w;  // count non-continuation bytes
  }
  return w;
}
}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = display_width(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }

  std::ostringstream os;
  auto emit_cell = [&](const std::string& cell, std::size_t width,
                       bool right) {
    const std::size_t w = display_width(cell);
    const std::string pad(width > w ? width - w : 0, ' ');
    if (right) {
      os << pad << cell;
    } else {
      os << cell << pad;
    }
  };

  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "  ";
    emit_cell(header_[c], widths[c], false);
  }
  os << '\n';
  std::size_t rule = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      emit_cell(row[c], widths[c], looks_numeric(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

std::string fmt(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string fmt_pct(double fraction, int digits) {
  return fmt(fraction * 100.0, digits) + "%";
}

std::string fmt_pct_ci(double mean, double half_width, int digits) {
  return fmt(mean * 100.0, digits) + "\xc2\xb1" + fmt(half_width * 100.0, digits) +
         "%";
}

}  // namespace sda::util
