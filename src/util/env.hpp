// Environment-variable configuration knobs shared by the bench binaries.
//
// The paper's experiments use two runs of one million time units per data
// point.  That is reproducible here but slow for a full regeneration of every
// figure, so the benches read their run length from the environment:
//
//   SDA_SIM_TIME  simulated time units per replication (default 200000)
//   SDA_REPS      independent replications per data point (default 2)
//   SDA_WARMUP    warm-up fraction excluded from statistics (default 0.05)
//   SDA_SEED      master seed (default 20250707)
//   SDA_FULL=1    paper-length runs (1e6 time units x 2 replications)
//   SDA_THREADS   worker parallelism for replication/sweep fan-out
//                 (default: hardware_concurrency; 1 = strictly sequential —
//                 read by util::ThreadPool, not by BenchEnv)
//   SDA_VALIDATE=1  run-time invariant oracle: containment/monotonicity
//                 checks on every SDA assignment plus structural self-checks
//                 of the event queue and ready heaps; violations abort with
//                 a dump (read by core::invariants, not by BenchEnv)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sda::util {

/// Reads a double env var; returns @p fallback when unset or unparsable.
double env_double(const char* name, double fallback) noexcept;

/// Reads an integer env var; returns @p fallback when unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback) noexcept;

/// True when the env var is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const char* name) noexcept;

/// Bench run-length settings resolved from the environment.
struct BenchEnv {
  double sim_time = 200000.0;
  int replications = 2;
  double warmup_fraction = 0.05;
  std::uint64_t seed = 20250707;

  /// One-line summary for bench headers.
  std::string describe() const;
};

/// Resolves BenchEnv from SDA_* variables (SDA_FULL overrides to
/// paper-length runs).  Unknown SDA_*-prefixed variables — usually typos
/// like SDA_SIMTIME — are reported loudly on stderr so a silently ignored
/// knob does not masquerade as a short run.
BenchEnv bench_env() noexcept;

/// Names of set environment variables that start with "SDA_" but are not
/// recognized knobs.  Variables prefixed "SDA_TEST_" are exempt (reserved
/// for the test suite's own scratch variables).
std::vector<std::string> unknown_sda_env();

/// Prints one stderr warning per unknown SDA_* variable.  At most once per
/// process, so callers may invoke it from every entry point.
void warn_unknown_sda_env() noexcept;

/// Case-insensitive Damerau-Levenshtein distance between two short names
/// (insert/delete/substitute/transpose, all cost 1).
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidate closest to @p name when it is close enough to be a likely
/// typo (distance <= max(1, name.size()/3)); empty string otherwise.
/// Shared by the SDA_* env warning and ExperimentConfig::set's unknown-key
/// diagnostics.
std::string closest_match(const std::string& name,
                          const std::vector<std::string>& candidates);

}  // namespace sda::util
