// Plain-text table formatting for the bench binaries.
//
// Every figure/table bench prints its series as an aligned text table
// (paper value next to measured value) so results can be eyeballed and
// diffed.  Cells are strings; numeric helpers format with fixed precision.
#pragma once

#include <string>
#include <vector>

namespace sda::util {

/// Column-aligned text table with a header row and a rule under it.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded blank).
  void add_row(std::vector<std::string> row);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with two spaces between columns, right-aligning numeric-looking
  /// cells and left-aligning the rest.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with @p digits fractional digits.
std::string fmt(double v, int digits = 3);

/// Formats a fraction as a percentage string, e.g. 0.251 -> "25.1%".
std::string fmt_pct(double fraction, int digits = 1);

/// Formats "m ± h" for a confidence interval (both as percentages).
std::string fmt_pct_ci(double mean, double half_width, int digits = 1);

}  // namespace sda::util
