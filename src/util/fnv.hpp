// FNV-1a 64-bit hashing, shared by the state fingerprints and the
// journal record checksums.  Same constants as metrics::Tracer's event
// fingerprint, exposed as free functions so non-trace state (admission
// ledgers, journal payloads) can hash without owning a Tracer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sda::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Mixes @p len raw bytes into hash @p h.
inline void fnv1a_mix(std::uint64_t& h, const void* data,
                      std::size_t len) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

/// Mixes a trivially-copyable value's object representation into @p h.
template <typename T>
inline void fnv1a_mix_value(std::uint64_t& h, const T& value) noexcept {
  fnv1a_mix(h, &value, sizeof value);
}

/// One-shot hash of a byte string.
inline std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = kFnvOffsetBasis;
  fnv1a_mix(h, s.data(), s.size());
  return h;
}

}  // namespace sda::util
