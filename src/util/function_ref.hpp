// Non-owning callable view (a lightweight `function_ref`).
//
// A FunctionRef is two words — an opaque pointer to the callee and a
// trampoline — so passing one costs the same as passing a raw function
// pointer, with none of std::function's ownership, copyability, or
// allocation baggage.  It is the right parameter type for "call this
// synchronously before I return" arguments: ThreadPool::parallel_for,
// CompositeBuilder's fill callbacks, and exp::sweep's config mutator all
// finish every invocation before returning, so the referenced callable
// (typically a lambda temporary at the call site) is always still alive.
//
// Because it does not own the callee, a FunctionRef must never be stored
// beyond the call it was passed to; use util::UniqueFn for stored
// callbacks.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace sda::util {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds to any callable lvalue or temporary invocable as R(Args...).
  /// The callable must outlive every call through *this.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(runtime/explicit)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace sda::util
