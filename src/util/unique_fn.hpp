// Small-buffer-optimized move-only callable with an arbitrary signature.
//
// This is sim::InlineFn's storage scheme (inline buffer for small
// nothrow-movable captures, one heap cell as fallback, move-only
// semantics) generalized from void() to any R(Args...).  It is the
// owning counterpart to util::FunctionRef: use it wherever a callback is
// *stored* — node completion/abort/failure handlers, observers, fault
// hooks, the process manager's terminal-record handlers — and
// FunctionRef where a callable is only borrowed for the duration of one
// call.
//
// Compared to std::function it drops the copyability requirement (so
// captures may hold move-only state) and never allocates for captures of
// up to kBufferSize bytes, which covers every handler in this repo
// (a this-pointer plus a couple of pointers/ints).
//
// sim::InlineFn stays a separate type on purpose: the event queue
// depends on its exact 56-byte footprint to keep pool slots within one
// cache line, and that contract is easier to see (and to protect with a
// static_assert) in a non-generic class.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sda::util {

template <typename Sig>
class UniqueFn;

template <typename R, typename... Args>
class UniqueFn<R(Args...)> {
 public:
  /// Inline capture budget, matching sim::InlineFn::kBufferSize: enough
  /// for a this-pointer plus several shared_ptrs.
  static constexpr std::size_t kBufferSize = 48;

  UniqueFn() noexcept = default;
  UniqueFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFn(F&& f) {  // NOLINT(runtime/explicit)
    construct<D>(std::forward<F>(f));
  }

  UniqueFn(UniqueFn&& other) noexcept { move_from(other); }

  UniqueFn& operator=(UniqueFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFn(const UniqueFn&) = delete;
  UniqueFn& operator=(const UniqueFn&) = delete;

  ~UniqueFn() { reset(); }

  /// Invokes the stored callable. Requires *this to be non-empty.
  R operator()(Args... args) {
    return ops_->invoke(&buf_, std::forward<Args>(args)...);
  }

  /// True when a callable is stored.
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the stored callable (releasing whatever its captures own)
  /// and leaves *this empty.  No-op when already empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

  /// True when a callable of type D would be stored inline (no allocation).
  template <typename D>
  static constexpr bool stores_inline() noexcept {
    return fits_inline<std::decay_t<D>>;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the payload into dst and destroys it at src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  /// Inline storage requires a nothrow move so that relocation (and thus
  /// UniqueFn's move operations) can be noexcept.
  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kBufferSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<D*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& ptr(void* p) noexcept { return *static_cast<D**>(p); }
    static R invoke(void* p, Args&&... args) {
      return (*ptr(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(ptr(src));
    }
    static void destroy(void* p) noexcept {
      delete ptr(p);  // sda-lint: allow(NAKED_NEW) heap-fallback cell
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D, typename F>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      // sda-lint: allow(NAKED_NEW) SBO heap-fallback cell, owned by *this
      ::new (static_cast<void*>(&buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(UniqueFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(&buf_, &other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kBufferSize];
  const Ops* ops_ = nullptr;
};

}  // namespace sda::util
