// Streaming statistics and confidence intervals.
//
// The paper reports missed-deadline fractions with 95% confidence intervals
// obtained from independent replications.  RunningStat accumulates samples
// with Welford's numerically stable one-pass algorithm; ConfidenceInterval
// turns replication means into a t-based interval.
#pragma once

#include <cstddef>
#include <vector>

namespace sda::util {

/// One-pass mean/variance accumulator (Welford).
class RunningStat {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Minimum observation; +inf when empty.
  double min() const noexcept { return min_; }

  /// Maximum observation; -inf when empty.
  double max() const noexcept { return max_; }

  /// Sum of all observations.
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e308 * 10;   // +inf without <limits> in the header
  double max_ = -1e308 * 10;  // -inf
};

/// Two-sided Student-t critical value for the given confidence level and
/// degrees of freedom. Tabulated for 95% and 99%; other levels fall back to
/// the normal approximation. df <= 0 returns +inf-like large value.
double t_critical(double confidence, int df) noexcept;

/// Symmetric confidence interval summary over replication means.
struct ConfidenceInterval {
  double mean = 0.0;       ///< point estimate (mean of replications)
  double half_width = 0.0; ///< t * s / sqrt(n); 0 for a single replication
  std::size_t n = 0;       ///< number of replications

  double lo() const noexcept { return mean - half_width; }
  double hi() const noexcept { return mean + half_width; }
};

/// Builds a t-based CI from replication values at the given confidence level.
ConfidenceInterval confidence_interval(const std::vector<double>& samples,
                                       double confidence = 0.95) noexcept;

/// Batch-means estimator for a single long run: splits the sample stream into
/// @p batches contiguous batches and treats batch means as i.i.d.
/// replications.  Used by the long-run validation tests (M/M/1).
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t batches = 20) : target_batches_(batches) {}

  void add(double x);

  /// CI over the batch means collected so far. Incomplete final batch is
  /// ignored.
  ConfidenceInterval interval(double confidence = 0.95) const noexcept;

  /// Overall mean of every sample seen (not just complete batches).
  double grand_mean() const noexcept { return all_.mean(); }

 private:
  std::size_t target_batches_;
  std::vector<double> batch_means_;
  RunningStat current_;
  RunningStat all_;
  std::size_t batch_size_ = 64;  // grows geometrically
};

}  // namespace sda::util
