#include "src/util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace sda::util {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (!(lo < hi) || buckets < 1) {
    throw std::invalid_argument("Histogram: need lo < hi and buckets >= 1");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t bucket) const noexcept {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const noexcept {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t max_bar) const {
  std::ostringstream os;
  const std::size_t peak =
      std::max<std::size_t>(1, *std::max_element(counts_.begin(), counts_.end()));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(max_bar)));
    os << '[';
    os.precision(3);
    os << bucket_lo(i) << ", " << bucket_hi(i) << ") " << std::string(bar, '#')
       << ' ' << counts_[i] << '\n';
  }
  if (underflow_) os << "underflow " << underflow_ << '\n';
  if (overflow_) os << "overflow " << overflow_ << '\n';
  return os.str();
}

}  // namespace sda::util
