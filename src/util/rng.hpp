// Pseudo-random number generation for the sda simulator.
//
// The simulator needs many *independent* random streams (one per workload
// source) so that, e.g., changing the number of nodes does not perturb the
// sequence of global-task arrivals.  We use xoshiro256++ (Blackman & Vigna),
// seeded through SplitMix64 as its authors recommend, and derive substreams
// with a deterministic split() so a single experiment seed reproduces the
// entire run.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sda::util {

/// SplitMix64 step: used for seeding and stream derivation.
/// Advances @p state and returns the next 64-bit output.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256++ pseudo-random generator.
///
/// Satisfies the essential parts of std::uniform_random_bit_generator so it
/// can be handed to <random> distributions, though the convenience members
/// below are what the simulator uses (they are deterministic across standard
/// library implementations, unlike std::exponential_distribution).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator deterministically from @p seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Derives an independent substream. The i-th split of a given generator is
  /// deterministic; splitting does not advance this generator's own sequence
  /// beyond one SplitMix64 step per call.
  Rng split() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed value with mean @p mean (mean = 1/rate).
  /// Requires mean > 0.
  double exponential(double mean) noexcept;

  /// Bernoulli trial with success probability @p p.
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates style draw of @p count distinct integers from [0, n).
  /// Writes them to @p out (must have room for count). Requires count <= n.
  void sample_distinct(int n, int count, int* out) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  std::uint64_t split_ctr_ = 0;
};

}  // namespace sda::util
