// Minimal command-line flag parsing for the example/driver binaries.
//
// Supported syntax:  --name=value   --name value   --switch
// Anything not starting with "--" is a positional argument.  A bare
// "--" ends flag parsing (the rest is positional).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sda::util {

class Flags {
 public:
  /// Parses argv[1..argc).  "--name value" consumes the next token as the
  /// value unless it also starts with "--".
  Flags(int argc, const char* const* argv);

  /// True when --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// Value accessors with fallbacks; unparsable numbers return the
  /// fallback.  A valueless switch returns fallback for numbers and "" for
  /// strings.
  std::string get_string(const std::string& name,
                         const std::string& fallback = {}) const;
  double get_double(const std::string& name, double fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags that were parsed but never read by any accessor — for catching
  /// typos in driver binaries.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace sda::util
