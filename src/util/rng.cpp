#include "src/util/rng.hpp"

#include <cassert>
#include <cmath>

namespace sda::util {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64_next(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() noexcept {
  // Mix the current state with a per-generator split counter so successive
  // splits give unrelated streams without consuming generator output.
  std::uint64_t s = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                    rotl(state_[3], 41) ^ (++split_ctr_ * 0xd1342543de82ef95ULL);
  std::uint64_t seed = splitmix64_next(s);
  return Rng(seed);
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's rejection-free-in-expectation bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // -log(1-U) with U in [0,1) avoids log(0).
  return -mean * std::log1p(-uniform01());
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

void Rng::sample_distinct(int n, int count, int* out) noexcept {
  assert(count <= n);
  // Selection sampling (Knuth 3.4.2 S): O(n), no allocation.
  int chosen = 0;
  for (int i = 0; i < n && chosen < count; ++i) {
    const double need = static_cast<double>(count - chosen);
    const double left = static_cast<double>(n - i);
    if (uniform01() * left < need) out[chosen++] = i;
  }
}

}  // namespace sda::util
