// Hot-path allocators: a chunked bump arena and a recycling size-class pool.
//
// Two complementary tools, both aimed at the per-submission allocation storm
// the process manager used to pay (tree nodes, task objects, per-run
// bookkeeping):
//
//  * Arena — a chunked bump allocator with reset-and-reuse.  allocate() is
//    a pointer bump; reset() rewinds every chunk without releasing memory,
//    so a steady-state consumer (task::FlatTree rebuilt per run) touches
//    the global allocator only while its high-water mark is still growing.
//    Arena memory is for trivially-destructible payloads only: reset()
//    runs no destructors.
//
//  * pool_alloc()/pool_free() — per-thread free lists over 16-byte size
//    classes, backing task::TreeNode's class-scope operator new/delete and
//    the pooled SimpleTask factories (via PoolAllocator +
//    std::allocate_shared).  Freeing pushes the block onto the *calling*
//    thread's list, so cross-thread frees are lock-free and safe; the
//    backing chunks are immortal (registered in a never-destroyed global
//    list) so a block freed after its allocating thread exited still points
//    into live memory, and LeakSanitizer sees every chunk as reachable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace sda::util {

/// Chunked bump allocator.  Not thread-safe; one arena per owner.
class Arena {
 public:
  /// @p first_chunk_bytes sizes the initial chunk; later chunks double
  /// until kMaxChunkBytes.
  explicit Arena(std::size_t first_chunk_bytes = 4096)
      : next_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns @p bytes of storage aligned to @p align.  Never returns
  /// nullptr (throws std::bad_alloc on exhaustion like operator new).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (cur_ < chunks_.size()) {
      // Align the *address*, not the chunk offset: operator new[] storage
      // only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__, so requests for
      // wider alignment (cache lines) need the base folded in.
      const auto base =
          reinterpret_cast<std::uintptr_t>(chunks_[cur_].data.get());
      const std::size_t off = static_cast<std::size_t>(
          ((base + used_ + (align - 1)) & ~std::uintptr_t{align - 1}) - base);
      if (off + bytes <= chunks_[cur_].size) {
        used_ = off + bytes;
        total_ += bytes;
        return chunks_[cur_].data.get() + off;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Typed array of trivially-destructible @p T (reset() runs no dtors).
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is reclaimed without running destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk; all outstanding pointers become invalid, all
  /// memory stays owned for reuse.
  void reset() noexcept {
    cur_ = 0;
    used_ = 0;
    total_ = 0;
  }

  /// Bytes handed out since the last reset().
  std::size_t bytes_allocated() const noexcept { return total_; }

  /// Bytes of backing storage currently owned (survives reset()).
  std::size_t bytes_reserved() const noexcept {
    std::size_t r = 0;
    for (const Chunk& c : chunks_) r += c.size;
    return r;
  }

 private:
  static constexpr std::size_t kMaxChunkBytes = std::size_t{1} << 20;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;    ///< chunk currently bumped into
  std::size_t used_ = 0;   ///< bytes consumed in chunks_[cur_]
  std::size_t total_ = 0;  ///< bytes handed out since reset()
  std::size_t next_chunk_bytes_;
};

/// Largest request served from the per-thread size-class pool; bigger
/// blocks fall through to the global allocator.
inline constexpr std::size_t kPoolMaxBytes = 512;

/// Allocates @p bytes from the calling thread's free lists (O(1); refills
/// a list from an immortal chunk when empty).
void* pool_alloc(std::size_t bytes);

/// Returns a pool_alloc() block.  Safe from any thread; the block lands on
/// the *calling* thread's free list.  @p bytes must match the allocation.
void pool_free(void* p, std::size_t bytes) noexcept;

/// Total bytes of immortal pool chunks ever reserved (diagnostics/tests).
std::size_t pool_bytes_reserved() noexcept;

/// std::allocator-compatible adapter over the pool: single-object
/// allocations are pooled, arrays fall through to the global allocator.
/// Used with std::allocate_shared so a SimpleTask and its shared_ptr
/// control block land in one recycled block.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(pool_alloc(sizeof(T)));
    return std::allocator<T>{}.allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      pool_free(p, sizeof(T));
      return;
    }
    std::allocator<T>{}.deallocate(p, n);
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) noexcept {
    return false;
  }
};

}  // namespace sda::util
