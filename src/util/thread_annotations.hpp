// Clang Thread Safety Analysis attribute macros (SDA_-prefixed to avoid
// collisions with other annotation headers).
//
// These expand to the __attribute__((...)) spellings understood by
// -Wthread-safety on Clang and to nothing everywhere else, so annotated
// code compiles unchanged under GCC/MSVC and gains compile-time lock
// checking whenever a Clang toolchain is available (the `hardened`
// preset turns the warnings into errors via SDA_THREAD_SAFETY=ON).
//
// The macro set mirrors the canonical list from the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).  Conventions
// for applying them — which fields get SDA_GUARDED_BY, when a fake
// "thread role" capability is used instead of a mutex, and when
// SDA_NO_THREAD_SAFETY_ANALYSIS is acceptable — live in DESIGN.md
// ("Static analysis architecture").
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SDA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif

#ifndef SDA_THREAD_ANNOTATION_ATTRIBUTE
#define SDA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lockable resource).  The string names
/// the capability kind in diagnostics ("mutex", "role").
#define SDA_CAPABILITY(x) SDA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (scoped lock / scoped role).
#define SDA_SCOPED_CAPABILITY SDA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding capability @p x.
#define SDA_GUARDED_BY(x) SDA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by capability @p x.
#define SDA_PT_GUARDED_BY(x) SDA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function precondition: the listed capabilities must be held by the
/// caller (and are still held on return).
#define SDA_REQUIRES(...) \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (must not be held before).
#define SDA_ACQUIRE(...) \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (must be held before).
#define SDA_RELEASE(...) \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts acquisition; the first argument is the return value
/// that means "acquired".
#define SDA_TRY_ACQUIRE(...) \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function precondition: the listed capabilities must NOT be held
/// (deadlock prevention for non-reentrant locks).
#define SDA_EXCLUDES(...) \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that a capability is held — for code
/// reached only on paths where the lock is provably held but the
/// analysis cannot see it.
#define SDA_ASSERT_CAPABILITY(x) \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the named capability (e.g. an
/// accessor exposing an inner mutex).
#define SDA_RETURN_CAPABILITY(x) \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Every use must
/// carry a comment explaining why the invariant holds anyway (see
/// DESIGN.md for the sanctioned cases: type-erased callback entry
/// points, post-join single-threaded reads).
#define SDA_NO_THREAD_SAFETY_ANALYSIS \
  SDA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
