#include "src/util/arena.hpp"

#include <cstring>
#include <mutex>

namespace sda::util {

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // operator new[] storage only guarantees default new-alignment, so the
  // chunk base must be folded into the alignment math for wider requests.
  const auto aligned_off = [align](const Chunk& c) {
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    return static_cast<std::size_t>(
        ((base + (align - 1)) & ~std::uintptr_t{align - 1}) - base);
  };
  // Advance through already-owned chunks (a reset() arena reuses them in
  // order) before growing.
  while (cur_ + 1 < chunks_.size()) {
    ++cur_;
    used_ = 0;
    const std::size_t off = aligned_off(chunks_[cur_]);
    if (off + bytes <= chunks_[cur_].size) {
      used_ = off + bytes;
      total_ += bytes;
      return chunks_[cur_].data.get() + off;
    }
  }
  std::size_t want = next_chunk_bytes_;
  while (want < bytes + align) want *= 2;
  if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
  cur_ = chunks_.size() - 1;
  const std::size_t off = aligned_off(chunks_[cur_]);
  used_ = off + bytes;
  total_ += bytes;
  return chunks_[cur_].data.get() + off;
}

namespace {

constexpr std::size_t kClassStep = 16;
constexpr std::size_t kClassCount = kPoolMaxBytes / kClassStep;  // 32
constexpr std::size_t kChunkBytes = 64 * 1024;

constexpr std::size_t size_class(std::size_t bytes) noexcept {
  return (bytes + kClassStep - 1) / kClassStep;  // 1-based; 0 never used
}

/// Immortal backing store shared by every thread's free lists.  The
/// registry is created on first use and never destroyed: a block freed
/// during static teardown (or after its allocating thread exited) still
/// points into live memory, and LeakSanitizer sees every chunk as
/// reachable through this list.
struct ChunkRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<std::byte[]>> chunks;
  std::size_t reserved = 0;
};

ChunkRegistry& registry() {
  // sda-lint: allow(NAKED_NEW) immortal pool registry — intentionally never
  // destroyed so frees during static teardown and from exited threads stay
  // safe; reachable through this static, so LSan reports no leak.
  static ChunkRegistry* reg = new ChunkRegistry();
  return *reg;
}

/// A freed block's storage doubles as the free-list link.
struct FreeNode {
  FreeNode* next;
};

struct ThreadCache {
  FreeNode* head[kClassCount + 1] = {};
};

ThreadCache& cache() {
  thread_local ThreadCache tc;
  return tc;
}

FreeNode* refill(std::size_t cls) {
  const std::size_t block = cls * kClassStep;
  auto chunk = std::make_unique<std::byte[]>(kChunkBytes);
  std::byte* base = chunk.get();
  {
    ChunkRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.chunks.push_back(std::move(chunk));
    reg.reserved += kChunkBytes;
  }
  // Thread the chunk into a list, first block returned to the caller.
  const std::size_t count = kChunkBytes / block;
  FreeNode* head = nullptr;
  for (std::size_t i = count; i-- > 1;) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * block);
    node->next = head;
    head = node;
  }
  cache().head[cls] = head;
  return reinterpret_cast<FreeNode*>(base);
}

}  // namespace

void* pool_alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kPoolMaxBytes) return ::operator new(bytes);
  const std::size_t cls = size_class(bytes);
  ThreadCache& tc = cache();
  FreeNode* node = tc.head[cls];
  if (node == nullptr) return refill(cls);
  tc.head[cls] = node->next;
  return node;
}

void pool_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kPoolMaxBytes) {
    ::operator delete(p);
    return;
  }
  const std::size_t cls = size_class(bytes);
  ThreadCache& tc = cache();
  auto* node = static_cast<FreeNode*>(p);
  node->next = tc.head[cls];
  tc.head[cls] = node;
}

std::size_t pool_bytes_reserved() noexcept {
  ChunkRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.reserved;
}

}  // namespace sda::util
