// Fixed-width histogram used for response-time and lateness distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sda::util {

/// Equal-width histogram over [lo, hi) with explicit under/overflow buckets.
class Histogram {
 public:
  /// Requires lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  /// Adds one observation.
  void add(double x) noexcept;

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }

  /// Inclusive lower edge of a bucket.
  double bucket_lo(std::size_t bucket) const noexcept;
  /// Exclusive upper edge of a bucket.
  double bucket_hi(std::size_t bucket) const noexcept;

  /// Approximate quantile (q in [0,1]) via linear interpolation within the
  /// containing bucket. Returns lo/hi bounds for out-of-range mass.
  double quantile(double q) const noexcept;

  /// Multi-line ASCII rendering (one row per bucket with a bar).
  std::string render(std::size_t max_bar = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace sda::util
