#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sda::util {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
// Two-sided 95% critical values for df = 1..30.
constexpr double kT95[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
// Two-sided 99% critical values for df = 1..30.
constexpr double kT99[30] = {
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
}  // namespace

double t_critical(double confidence, int df) noexcept {
  if (df <= 0) return 1e12;
  const bool want99 = confidence > 0.97;
  if (df <= 30) return want99 ? kT99[df - 1] : kT95[df - 1];
  return want99 ? 2.576 : 1.960;  // normal approximation
}

ConfidenceInterval confidence_interval(const std::vector<double>& samples,
                                       double confidence) noexcept {
  ConfidenceInterval ci;
  ci.n = samples.size();
  if (samples.empty()) return ci;
  RunningStat rs;
  for (double x : samples) rs.add(x);
  ci.mean = rs.mean();
  if (samples.size() >= 2) {
    const double t =
        t_critical(confidence, static_cast<int>(samples.size()) - 1);
    ci.half_width = t * rs.stddev() / std::sqrt(static_cast<double>(ci.n));
  }
  return ci;
}

void BatchMeans::add(double x) {
  all_.add(x);
  current_.add(x);
  if (current_.count() >= batch_size_) {
    batch_means_.push_back(current_.mean());
    current_ = RunningStat{};
    // Keep the number of batches bounded: once we exceed 2x the target,
    // pairwise-merge adjacent batches and double the batch size.
    if (batch_means_.size() >= 2 * target_batches_) {
      std::vector<double> merged;
      merged.reserve(batch_means_.size() / 2);
      for (std::size_t i = 0; i + 1 < batch_means_.size(); i += 2) {
        merged.push_back(0.5 * (batch_means_[i] + batch_means_[i + 1]));
      }
      batch_means_ = std::move(merged);
      batch_size_ *= 2;
    }
  }
}

ConfidenceInterval BatchMeans::interval(double confidence) const noexcept {
  return confidence_interval(batch_means_, confidence);
}

}  // namespace sda::util
