#include "src/exp/compare.hpp"

#include <cmath>
#include <sstream>

#include "src/core/analysis.hpp"
#include "src/exp/figures.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/task_class.hpp"
#include "src/util/feq.hpp"
#include "src/util/table.hpp"

namespace sda::exp::compare {

void Scorecard::add(std::string id, std::string claim, bool pass,
                    std::string detail) {
  checks_.push_back(
      Check{std::move(id), std::move(claim), pass, std::move(detail)});
}

void Scorecard::check_near(std::string id, std::string claim, double measured,
                           double expected, double tolerance) {
  std::ostringstream detail;
  detail << "measured " << util::fmt(measured, 4) << " vs expected "
         << util::fmt(expected, 4) << " (tol " << util::fmt(tolerance, 4)
         << ")";
  add(std::move(id), std::move(claim),
      std::fabs(measured - expected) <= tolerance, detail.str());
}

void Scorecard::check_less(std::string id, std::string claim, double a,
                           double b, double margin) {
  std::ostringstream detail;
  detail << util::fmt(a, 4) << " < " << util::fmt(b, 4);
  if (util::fne(margin, 0.0)) {
    detail << " (margin " << util::fmt(margin, 4) << ")";
  }
  add(std::move(id), std::move(claim), a < b + margin, detail.str());
}

std::size_t Scorecard::failures() const noexcept {
  std::size_t n = 0;
  for (const Check& c : checks_) n += c.pass ? 0 : 1;
  return n;
}

std::string Scorecard::render() const {
  util::Table table({"check", "verdict", "claim", "measured"});
  for (const Check& c : checks_) {
    table.add_row({c.id, c.pass ? "PASS" : "FAIL", c.claim, c.detail});
  }
  std::ostringstream os;
  os << table.render();
  os << '\n' << (checks_.size() - failures()) << '/' << checks_.size()
     << " checks passed\n";
  return os.str();
}

namespace {

struct Md {
  double local = 0.0;
  double subtask = 0.0;
  double global = 0.0;
  double missed_work = 0.0;
  /// 95% CI half-widths — orderings between near-equal rates are checked
  /// up to the replication noise instead of as exact inequalities.
  double local_hw = 0.0;
  double global_hw = 0.0;
};

Md measure(ExperimentConfig c, int global_cls = metrics::global_class(4)) {
  const metrics::Report r = run_experiment(c);
  Md m;
  m.local = r.summary(metrics::kLocalClass).miss_rate.mean;
  m.subtask = r.summary(metrics::kSubtaskClass).miss_rate.mean;
  m.global = r.summary(global_cls).miss_rate.mean;
  m.missed_work = r.overall_missed_work().mean;
  m.local_hw = r.summary(metrics::kLocalClass).miss_rate.half_width;
  m.global_hw = r.summary(global_cls).miss_rate.half_width;
  return m;
}

}  // namespace

Scorecard run_reproduction_battery(const util::BenchEnv& env) {
  Scorecard card;

  ExperimentConfig base = baseline_config();
  figures::apply_bench_env(base, env);
  base.load = 0.5;

  // ---- Figure 5 / §6.1 anchors (UD at load 0.5) --------------------------
  ExperimentConfig c = base;
  c.psp = "ud";
  const Md ud = measure(c);
  card.check_near("fig5.md-local", "MD_local(UD) ~ 8.9% at load .5", ud.local,
                  0.089, 0.015);
  card.check_near("fig5.md-subtask", "MD_subtask(UD) ~ 7.1%", ud.subtask,
                  0.071, 0.015);
  card.check_near("fig5.md-global", "MD_global(UD) ~ 25%", ud.global, 0.25,
                  0.03);
  card.check_less("fig5.subtask-below-local",
                  "subtasks have slightly more slack (Eq. 3)", ud.subtask,
                  ud.local);
  card.check_near(
      "fig5.independence",
      "MD_global ~ 1-(1-MD_subtask)^4 (independence approximation)",
      ud.global, core::analysis::global_miss_probability(ud.subtask, 4),
      0.04);

  // ---- Figure 6 (DIV-1 / DIV-2) -------------------------------------------
  c = base;
  c.psp = "div-1";
  const Md div1 = measure(c);
  c.psp = "div-2";
  const Md div2 = measure(c);
  card.check_near("fig6.div1-global", "MD_global(DIV-1) ~ 13% at load .5",
                  div1.global, 0.13, 0.025);
  card.check_near("fig6.div1-local", "MD_local(DIV-1) ~ 11.7%", div1.local,
                  0.117, 0.02);
  card.check_less("fig6.div1-halves", "DIV-1 roughly halves MD_global",
                  div1.global, 0.65 * ud.global);
  card.check_less("fig6.local-cost", "locals pay only mildly under DIV-1",
                  div1.local, ud.local + 0.05);
  card.check_near("fig6.div2-close", "DIV-2 ~= DIV-1 at moderate load",
                  div2.global, div1.global, 0.025);
  card.check_less("fig6.missed-work", "missed WORK improves under DIV-1",
                  div1.missed_work, ud.missed_work + 0.003);

  // ---- Figure 7 (GF) --------------------------------------------------------
  c = base;
  c.psp = "gf";
  const Md gf = measure(c);
  card.check_less("fig7.gf-beats-div1", "GF misses fewer globals than DIV-1",
                  gf.global, div1.global);
  card.check_near("fig7.gf-local", "GF ~= DIV-1 on locals", gf.local,
                  div1.local, 0.02);
  {
    ExperimentConfig hi = base;
    hi.load = 0.8;
    hi.psp = "div-1";
    const Md div1_hi = measure(hi);
    hi.psp = "gf";
    const Md gf_hi = measure(hi);
    card.check_less("fig7.gap-grows",
                    "DIV-1 -> GF gap widens at high load",
                    div1.global - gf.global, div1_hi.global - gf_hi.global);
  }

  // ---- Figure 9 (choosing x) ----------------------------------------------
  {
    ExperimentConfig fx = base;
    fx.n_min = fx.n_max = 2;
    fx.psp = "div-1";
    const Md x1 = measure(fx, metrics::global_class(2));
    fx.psp = "div-4";
    const Md x4 = measure(fx, metrics::global_class(2));
    card.check_near("fig9.flattens",
                    "for n=2 the curve has ~stabilized by x=1", x4.global,
                    x1.global, 0.035);
  }

  // ---- Figure 10 (frac_local) -----------------------------------------------
  {
    ExperimentConfig f0 = base;
    f0.frac_local = 0.0;
    f0.psp = "ud";
    const Md ud0 = measure(f0);
    f0.psp = "gf";
    const Md gf0 = measure(f0);
    card.check_near("fig10.gf-equals-ud",
                    "GF == UD when there are no local tasks", gf0.global,
                    ud0.global, 1e-9);
    ExperimentConfig f9 = base;
    f9.frac_local = 0.9;
    f9.psp = "gf";
    const Md gf9 = measure(f9);
    card.check_less("fig10.most-effective-with-locals",
                    "GF is most effective with a large local population",
                    gf9.global, gf0.global);
  }

  // ---- Figure 11 (PM abortion) ----------------------------------------------
  {
    ExperimentConfig ab = base;
    ab.pm_abort = core::PmAbortMode::kRealDeadline;
    ab.psp = "ud";
    const Md ud_ab = measure(ab);
    ab.psp = "div-1";
    const Md div1_ab = measure(ab);
    card.check_near("fig11.ud", "MD_global(UD, pm-abort) ~ 15%", ud_ab.global,
                    0.15, 0.025);
    card.check_near("fig11.div1", "MD_global(DIV-1, pm-abort) ~ 7.8%",
                    div1_ab.global, 0.078, 0.02);
    card.check_less("fig11.abort-helps",
                    "abortion lowers MD_global (no wasted work)",
                    ud_ab.global, ud.global);
  }

  // ---- Figure 12 (n ~ U[2..6]) -----------------------------------------------
  {
    ExperimentConfig nh = base;
    nh.n_min = 2;
    nh.n_max = 6;
    nh.psp = "ud";
    const metrics::Report r = run_experiment(nh);
    const double md2 = r.summary(metrics::global_class(2)).miss_rate.mean;
    const double md6 = r.summary(metrics::global_class(6)).miss_rate.mean;
    const double mdl = r.summary(metrics::kLocalClass).miss_rate.mean;
    card.check_less("fig12.grows-with-n", "under UD, MD grows with n", md2,
                    md6);
    card.check_near("fig12.n6-4x-locals", "n=6 misses ~4x the locals",
                    md6 / std::max(mdl, 1e-9), 4.0, 1.3);
    nh.psp = "div-1";
    const metrics::Report rd = run_experiment(nh);
    const double d2 = rd.summary(metrics::global_class(2)).miss_rate.mean;
    const double d6 = rd.summary(metrics::global_class(6)).miss_rate.mean;
    card.check_less("fig12.div1-levels",
                    "DIV-1 levels the classes (n=6 close to n=2)",
                    std::fabs(d6 - d2), std::fabs(md6 - md2));
  }

  // ---- Figure 15 (SSP + PSP on the Fig. 14 graph) ---------------------------
  {
    ExperimentConfig g = graph_config();
    figures::apply_bench_env(g, env);
    g.load = 0.6;
    auto run_combo = [&](const char* psp, const char* ssp) {
      ExperimentConfig cc = g;
      cc.psp = psp;
      cc.ssp = ssp;
      return measure(cc, metrics::global_class(0));
    };
    const Md udud = run_combo("ud", "ud");
    const Md uddiv = run_combo("div-1", "ud");
    const Md eqfud = run_combo("ud", "eqf");
    const Md eqfdiv = run_combo("div-1", "eqf");
    card.check_less("fig15.div-helps", "UD-DIV1 beats UD-UD on globals",
                    uddiv.global, udud.global);
    card.check_less("fig15.eqf-helps", "EQF-UD beats UD-UD on globals",
                    eqfud.global, udud.global);
    card.check_less("fig15.additive-1", "EQF-DIV1 beats UD-DIV1",
                    eqfdiv.global, uddiv.global);
    card.check_less("fig15.additive-2", "EQF-DIV1 beats EQF-UD",
                    eqfdiv.global, eqfud.global);
    card.check_less("fig15.close-to-local",
                    "EQF-DIV1 keeps MD_global near MD_local at load .6",
                    eqfdiv.global, eqfdiv.local + 0.06);
    // Low-load inversion: globals miss slightly *less* than locals.
    ExperimentConfig lo = g;
    lo.load = 0.3;
    lo.psp = "ud";
    lo.ssp = "ud";
    const Md udud_lo = measure(lo, metrics::global_class(0));
    // Both rates are small and close here; at quick scales (few short
    // replications) the ordering can flip inside the CIs, so allow the
    // combined statistical margin.
    card.check_less("fig15.low-load-inversion",
                    "at low load globals miss less (5x slack)",
                    udud_lo.global, udud_lo.local,
                    udud_lo.global_hw + udud_lo.local_hw);
  }

  return card;
}

}  // namespace sda::exp::compare
