#include "src/exp/csv.hpp"

#include <fstream>
#include <sstream>

#include "src/metrics/task_class.hpp"

namespace sda::exp {

namespace {
void append_point_rows(std::ostringstream& os, const std::string& prefix,
                       const SweepPoint& p) {
  for (int cls : p.report.classes()) {
    const metrics::ClassSummary s = p.report.summary(cls);
    os << prefix << p.x << ',' << cls << ','
       << metrics::default_class_name(cls) << ',' << s.miss_rate.mean << ','
       << s.miss_rate.half_width << ',' << s.missed_work_rate.mean << ','
       << s.finished_total << '\n';
  }
}
}  // namespace

std::string sweep_to_csv(const std::vector<SweepPoint>& points,
                         const std::string& x_name) {
  std::ostringstream os;
  os << x_name
     << ",class,class_name,miss_rate,miss_rate_hw,missed_work,finished\n";
  for (const SweepPoint& p : points) append_point_rows(os, "", p);
  return os.str();
}

std::string series_to_csv(
    const std::vector<std::pair<std::string, std::vector<SweepPoint>>>& series,
    const std::string& x_name) {
  std::ostringstream os;
  os << "series," << x_name
     << ",class,class_name,miss_rate,miss_rate_hw,missed_work,finished\n";
  for (const auto& [name, points] : series) {
    for (const SweepPoint& p : points) {
      append_point_rows(os, name + ",", p);
    }
  }
  return os.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace sda::exp
