// The socket transport for the admission front door: a single-threaded
// non-blocking event loop (epoll on Linux, poll everywhere else /
// when SDA_NET_POLL=1) that drives one shared ServeSession.
//
// Service model: any number of clients connect and write protocol
// lines; every decision is routed back to the connection that
// submitted the run — including decisions that resolve later, when a
// *different* client's `done` frees the capacity a parked submission
// was waiting for.  Replies for a client that has since disconnected
// are counted (`orphaned_replies`) and dropped; the admission state
// they changed stands, exactly as it would have in-stream.
//
// Robustness contract, enforced per connection:
//   * bounded read buffering — LineSplitter truncates oversized lines,
//     so a client without newlines cannot grow memory;
//   * bounded write buffering — a client that stops reading while
//     decisions accumulate is evicted (slow-client backpressure)
//     rather than ballooning the server;
//   * idle and partial-line (request) timeouts evict dead peers.
//
// Shutdown: request_stop() is async-signal-safe (one write to a
// self-pipe).  The loop then drains: stops accepting, processes the
// complete lines already received, flushes write buffers briefly,
// journals a checkpoint, and emits the summary record on the control
// stream.  kill -9 is the *other* supported shutdown: the journal
// replays (see journal.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/exp/protocol.hpp"
#include "src/exp/serve.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace sda::exp::net {

/// A parsed --listen address: "host:port" (TCP; port 0 = ephemeral,
/// the bound port is reported in the sda.listen.v1 banner) or
/// "unix:/path" (stream socket; the path is unlinked on close).
struct ListenSpec {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string path;  ///< unix-domain socket path
};

/// Parses @p text into @p spec.  Returns false with a message in
/// @p error on malformed input.
bool parse_listen_spec(const std::string& text, ListenSpec* spec,
                       std::string* error);

struct ServerOptions {
  ListenSpec listen;
  std::size_t max_connections = 64;
  /// Per-connection line-assembly bound (LineSplitter truncation).
  std::size_t max_line_bytes = 64 * 1024;
  /// Eviction threshold for a connection's pending outbound bytes.
  std::size_t max_write_buffer = 1 << 20;
  int idle_timeout_ms = 30'000;    ///< no bytes at all from the peer
  int request_timeout_ms = 5'000;  ///< an unfinished line this old
  int tick_ms = 50;                ///< event-loop timer granularity
  int drain_timeout_ms = 1'000;    ///< write-flush budget at shutdown
  /// SO_SNDBUF for the listener (inherited by accepted sockets);
  /// 0 = kernel default.  Bounds per-client kernel-side buffering so
  /// slow-client backpressure trips on the user-space outbox instead
  /// of hiding inside a large socket buffer.
  int sndbuf_bytes = 0;
};

/// Minimal readiness-API shim: epoll where available, poll otherwise.
/// Level-triggered semantics in both backends (the loop re-arms write
/// interest only while bytes are pending, so level-triggered is cheap).
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool add(int fd, bool want_write);
  bool update(int fd, bool want_write);
  void remove(int fd);
  /// Blocks up to @p timeout_ms; fills @p events with ready fds.
  /// Returns false on an unrecoverable backend error.
  bool wait(int timeout_ms, std::vector<Event>& events);
  bool using_epoll() const noexcept { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;                 ///< -1 = poll fallback
  std::map<int, bool> interest_;      ///< fd -> want_write (poll backend)
};

/// One accepted client.
struct Connection {
  int fd = -1;
  LineSplitter splitter{0};
  std::string outbox;          ///< unsent reply bytes
  std::size_t sent = 0;        ///< outbox prefix already written
  std::uint64_t last_activity_ms = 0;
  std::uint64_t partial_since_ms = 0;  ///< first byte of an unfinished line
  bool draining = false;       ///< flush outbox, then close
  /// Evicted while reply routing ran inside this (or another)
  /// connection's LineSplitter callback stack.  Destroying a Connection
  /// there would free the splitter whose feed() loop is still running,
  /// so eviction only marks; reap_doomed() closes once the stack
  /// unwinds.  A doomed connection accepts no further lines or replies.
  bool doomed = false;
};

class ServeServer {
 public:
  ServeServer(ServeSession& session, const ServerOptions& options);
  ~ServeServer();
  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds and listens.  After success bound_port() reports the real
  /// port (meaningful with port 0).
  bool start(std::string* error);

  /// The sda.listen.v1 banner line (includes the bound address) that
  /// sda_run prints on stdout so scripts can discover an ephemeral
  /// port.  Valid after start().
  std::string banner() const;

  std::uint16_t bound_port() const noexcept { return bound_port_; }

  /// Runs the event loop until request_stop().  Drain output (the
  /// summary record) goes to @p out.  Returns 0 on a clean drain,
  /// 1 on an unrecoverable loop error.  Assumes the loop_ role: the
  /// calling thread becomes the event-loop owner for the duration.
  int run(std::ostream& out);

  /// Async-signal-safe stop: one byte down the self-pipe.  Safe to
  /// call from a signal handler or another thread — by annotation it
  /// cannot touch any loop_-guarded state (the compiler rejects it).
  void request_stop();

  // Read by the owning thread after run() returns (tests, drain
  // summary); no loop thread exists then to race with.
  const ServeNetStats& stats() const noexcept SDA_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }

 private:
  void accept_clients() SDA_REQUIRES(loop_);
  void handle_readable(Connection& conn) SDA_REQUIRES(loop_);
  void handle_writable(Connection& conn) SDA_REQUIRES(loop_);
  void feed_line(Connection& conn, std::string_view line, bool oversized)
      SDA_REQUIRES(loop_);
  void route_replies(Connection* origin,
                     const std::vector<ServeSession::Reply>& replies)
      SDA_REQUIRES(loop_);
  void send_to(Connection& conn, std::string_view bytes) SDA_REQUIRES(loop_);
  void close_connection(int fd) SDA_REQUIRES(loop_);
  /// Closes every connection marked doomed during a callback stack.
  void reap_doomed() SDA_REQUIRES(loop_);
  void enforce_timeouts(std::uint64_t now_ms) SDA_REQUIRES(loop_);
  void drain(std::ostream& out) SDA_REQUIRES(loop_);

  ServeSession& session_;
  ServerOptions options_;
  Poller poller_;
  int listen_fd_ = -1;
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  /// Event-loop ownership role: the connection table and everything
  /// derived from it may only be touched from inside run()'s loop (or
  /// after it has returned).  request_stop(), the only cross-thread
  /// entry point, provably touches none of it.
  util::ThreadRole loop_;
  bool stop_requested_ SDA_GUARDED_BY(loop_) = false;
  std::map<int, Connection> connections_
      SDA_GUARDED_BY(loop_);  ///< fd -> state
  std::map<std::uint64_t, int> id_routes_
      SDA_GUARDED_BY(loop_);  ///< run id -> owning fd
  std::vector<int> doomed_fds_
      SDA_GUARDED_BY(loop_);  ///< evicted, close pending
  ServeNetStats stats_ SDA_GUARDED_BY(loop_);
};

}  // namespace sda::exp::net
