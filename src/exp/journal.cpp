#include "src/exp/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/util/fnv.hpp"

namespace sda::exp {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// Writes all of @p data to @p fd, retrying on EINTR / short writes.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

JournalReadResult read_journal(const std::string& path) {
  JournalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.diagnostic = "cannot open " + path;
    return result;
  }
  std::string line;
  if (!std::getline(in, line) || line != kJournalHeader) {
    result.diagnostic = "missing sda.journal.v1 header";
    return result;
  }
  result.ok = true;
  std::uint64_t record_no = 0;
  while (std::getline(in, line)) {
    ++record_no;
    const auto torn = [&](const char* why) {
      result.truncated = true;
      result.diagnostic = "record " + std::to_string(record_no) + ": " + why;
    };
    // "<type> <crc16> <len> <payload>" — reject anything shorter than
    // the fixed prefix outright.
    if (line.size() < 2 + 17 + 2 || (line[0] != 'E' && line[0] != 'C') ||
        line[1] != ' ' || line[18] != ' ') {
      torn("malformed record framing");
      break;
    }
    std::uint64_t crc = 0;
    {
      const char* first = line.data() + 2;
      const std::from_chars_result r =
          std::from_chars(first, first + 16, crc, 16);
      if (r.ec != std::errc() || r.ptr != first + 16) {
        torn("bad checksum field");
        break;
      }
    }
    std::size_t len = 0;
    const std::size_t len_start = 19;
    const std::size_t len_end = line.find(' ', len_start);
    if (len_end == std::string::npos) {
      torn("missing length field");
      break;
    }
    {
      const char* first = line.data() + len_start;
      const char* last = line.data() + len_end;
      const std::from_chars_result r = std::from_chars(first, last, len);
      if (r.ec != std::errc() || r.ptr != last) {
        torn("bad length field");
        break;
      }
    }
    const std::string_view payload =
        std::string_view(line).substr(len_end + 1);
    if (payload.size() != len) {
      torn("length mismatch (torn write)");
      break;
    }
    if (util::fnv1a(payload) != crc) {
      torn("checksum mismatch");
      break;
    }
    result.records.push_back(JournalRecord{line[0], std::string(payload)});
  }
  // A final line without '\n' is only surfaced by getline when it has
  // content, and the length/crc checks above already reject it.
  return result;
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string& path, const Config& config,
                         std::string* error) {
  close();
  config_ = config;
  failed_ = false;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open journal " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    const std::string header = std::string(kJournalHeader) + "\n";
    if (!write_all(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
      if (error != nullptr) {
        *error = "cannot write journal header: " +
                 std::string(std::strerror(errno));
      }
      if (::close(fd) != 0) { /* nothing left to salvage */ }
      return false;
    }
  } else {
    // Appending to an existing journal: it must be one of ours.
    std::ifstream check(path, std::ios::binary);
    std::string first;
    if (!std::getline(check, first) || first != kJournalHeader) {
      if (error != nullptr) {
        *error = path + " exists but is not an sda.journal.v1 file";
      }
      if (::close(fd) != 0) { /* nothing left to salvage */ }
      return false;
    }
  }
  fd_ = fd;
  last_flush_ = std::chrono::steady_clock::now();
  return true;
}

bool JournalWriter::append(char type, std::string_view payload,
                           bool force_flush) {
  if (fd_ < 0 || failed_) return false;
  buffer_.push_back(type);
  buffer_.push_back(' ');
  buffer_ += hex16(util::fnv1a(payload));
  buffer_.push_back(' ');
  buffer_ += std::to_string(payload.size());
  buffer_.push_back(' ');
  buffer_ += payload;
  buffer_.push_back('\n');
  ++pending_;
  ++appended_;
  if (force_flush || pending_ >= config_.flush_every) return flush();
  return true;
}

bool JournalWriter::append_event(std::string_view line) {
  return append('E', line, /*force_flush=*/false);
}

bool JournalWriter::append_checkpoint(std::string_view summary_json) {
  return append('C', summary_json, /*force_flush=*/true);
}

bool JournalWriter::flush() {
  if (fd_ < 0 || failed_) return false;
  if (buffer_.empty()) return true;
  if (!write_all(fd_, buffer_.data(), buffer_.size()) || ::fsync(fd_) != 0) {
    ++io_errors_;
    failed_ = true;  // a half-written batch is unrecoverable in-process
    return false;
  }
  buffer_.clear();
  pending_ = 0;
  last_flush_ = std::chrono::steady_clock::now();
  return true;
}

bool JournalWriter::maybe_flush(std::chrono::steady_clock::time_point now) {
  if (pending_ == 0) return true;
  if (now - last_flush_ < config_.flush_interval) return true;
  return flush();
}

void JournalWriter::close() {
  if (fd_ < 0) return;
  if (!flush()) { /* sticky failure already counted in io_errors_ */ }
  if (::close(fd_) != 0) ++io_errors_;
  fd_ = -1;
}

}  // namespace sda::exp
