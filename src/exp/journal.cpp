#include "src/exp/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/util/fnv.hpp"

namespace sda::exp {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// Writes all of @p data to @p fd, retrying on EINTR / short writes.
bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// fsyncs the directory containing @p path so a freshly created file's
/// directory entry survives a crash (standard WAL-create hygiene).
/// Best effort: some filesystems refuse directory fsync.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return;
  if (::fsync(dfd) != 0) { /* best effort */ }
  if (::close(dfd) != 0) { /* nothing to salvage */ }
}

}  // namespace

JournalReadResult read_journal(const std::string& path) {
  JournalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.diagnostic = "cannot open " + path;
    return result;
  }
  std::string data;
  {
    std::ostringstream raw;
    raw << in.rdbuf();
    data = std::move(raw).str();
  }
  const std::string_view header = kJournalHeader;
  if (data.size() < header.size() ||
      data.compare(0, header.size(), header) != 0 ||
      (data.size() > header.size() && data[header.size()] != '\n')) {
    result.diagnostic = "missing sda.journal.v1 header";
    return result;
  }
  result.ok = true;
  if (data.size() == header.size()) {
    // The header itself lost its '\n' to a torn create.
    result.valid_bytes = data.size();
    result.unterminated_tail = true;
    return result;
  }
  std::size_t pos = header.size() + 1;
  result.valid_bytes = pos;
  std::uint64_t record_no = 0;
  while (pos < data.size()) {
    ++record_no;
    const std::size_t nl = data.find('\n', pos);
    const bool terminated = nl != std::string::npos;
    const std::string_view line(data.data() + pos,
                                (terminated ? nl : data.size()) - pos);
    const auto torn = [&](const char* why) {
      result.truncated = true;
      result.diagnostic = "record " + std::to_string(record_no) + ": " + why;
    };
    // "<type> <crc16> <len> <payload>" — reject anything shorter than
    // the fixed prefix outright.
    if (line.size() < 2 + 17 + 2 || (line[0] != 'E' && line[0] != 'C') ||
        line[1] != ' ' || line[18] != ' ') {
      torn("malformed record framing");
      break;
    }
    std::uint64_t crc = 0;
    {
      const char* first = line.data() + 2;
      const std::from_chars_result r =
          std::from_chars(first, first + 16, crc, 16);
      if (r.ec != std::errc() || r.ptr != first + 16) {
        torn("bad checksum field");
        break;
      }
    }
    std::size_t len = 0;
    const std::size_t len_start = 19;
    const std::size_t len_end = line.find(' ', len_start);
    if (len_end == std::string::npos) {
      torn("missing length field");
      break;
    }
    {
      const char* first = line.data() + len_start;
      const char* last = line.data() + len_end;
      const std::from_chars_result r = std::from_chars(first, last, len);
      if (r.ec != std::errc() || r.ptr != last) {
        torn("bad length field");
        break;
      }
    }
    const std::string_view payload = line.substr(len_end + 1);
    if (payload.size() != len) {
      torn("length mismatch (torn write)");
      break;
    }
    if (util::fnv1a(payload) != crc) {
      torn("checksum mismatch");
      break;
    }
    result.records.push_back(JournalRecord{line[0], std::string(payload)});
    if (!terminated) {
      // The payload survived intact; only the record's '\n' was torn
      // off.  The record counts, but an appender must restore the
      // newline before the next record.
      result.valid_bytes = data.size();
      result.unterminated_tail = true;
      break;
    }
    pos = nl + 1;
    result.valid_bytes = pos;
  }
  return result;
}

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string& path, const Config& config,
                         std::string* error) {
  util::RoleGuard own(owner_);
  close_impl();
  config_ = config;
  failed_ = false;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open journal " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size == 0) {
    const std::string header = std::string(kJournalHeader) + "\n";
    if (!write_all(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
      if (error != nullptr) {
        *error = "cannot write journal header: " +
                 std::string(std::strerror(errno));
      }
      if (::close(fd) != 0) { /* nothing left to salvage */ }
      return false;
    }
    // The records are only as durable as the file's directory entry.
    fsync_parent_dir(path);
  } else {
    // Appending to an existing journal: it must be one of ours, and a
    // previous crash may have torn its tail.  Drop the torn bytes so
    // the first new record starts on a record boundary — appending
    // after half a line would glue onto it, fail the checksum there on
    // the next recovery, and silently discard everything after it.
    const JournalReadResult scan = read_journal(path);
    if (!scan.ok) {
      if (error != nullptr) {
        *error = path + " exists but is not an sda.journal.v1 file";
      }
      if (::close(fd) != 0) { /* nothing left to salvage */ }
      return false;
    }
    bool repaired = false;
    if (scan.valid_bytes < static_cast<std::uint64_t>(size)) {
      if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
        if (error != nullptr) {
          *error = "cannot drop torn journal tail: " +
                   std::string(std::strerror(errno));
        }
        if (::close(fd) != 0) { /* nothing left to salvage */ }
        return false;
      }
      repaired = true;
    }
    if (scan.unterminated_tail) {
      // The final record is valid but lost its '\n'; restore it.
      if (!write_all(fd, "\n", 1)) {
        if (error != nullptr) {
          *error = "cannot terminate journal tail: " +
                   std::string(std::strerror(errno));
        }
        if (::close(fd) != 0) { /* nothing left to salvage */ }
        return false;
      }
      repaired = true;
    }
    if (repaired && ::fsync(fd) != 0) {
      if (error != nullptr) {
        *error = "cannot sync repaired journal: " +
                 std::string(std::strerror(errno));
      }
      if (::close(fd) != 0) { /* nothing left to salvage */ }
      return false;
    }
  }
  fd_ = fd;
  last_flush_ = std::chrono::steady_clock::now();
  return true;
}

bool JournalWriter::append(char type, std::string_view payload,
                           bool force_flush) {
  if (fd_ < 0 || failed_) return false;
  buffer_.push_back(type);
  buffer_.push_back(' ');
  buffer_ += hex16(util::fnv1a(payload));
  buffer_.push_back(' ');
  buffer_ += std::to_string(payload.size());
  buffer_.push_back(' ');
  buffer_ += payload;
  buffer_.push_back('\n');
  ++pending_;
  ++appended_;
  if (force_flush || pending_ >= config_.flush_every) return flush_impl();
  return true;
}

bool JournalWriter::append_event(std::string_view line) {
  util::RoleGuard own(owner_);
  return append('E', line, /*force_flush=*/false);
}

bool JournalWriter::append_checkpoint(std::string_view summary_json) {
  util::RoleGuard own(owner_);
  return append('C', summary_json, /*force_flush=*/true);
}

bool JournalWriter::flush() {
  util::RoleGuard own(owner_);
  return flush_impl();
}

bool JournalWriter::flush_impl() {
  if (fd_ < 0 || failed_) return false;
  if (buffer_.empty()) return true;
  if (!write_all(fd_, buffer_.data(), buffer_.size()) || ::fsync(fd_) != 0) {
    ++io_errors_;
    failed_ = true;  // a half-written batch is unrecoverable in-process
    return false;
  }
  buffer_.clear();
  pending_ = 0;
  last_flush_ = std::chrono::steady_clock::now();
  return true;
}

bool JournalWriter::maybe_flush(std::chrono::steady_clock::time_point now) {
  util::RoleGuard own(owner_);
  if (pending_ == 0) return true;
  if (now - last_flush_ < config_.flush_interval) return true;
  return flush_impl();
}

void JournalWriter::close() {
  util::RoleGuard own(owner_);
  close_impl();
}

void JournalWriter::close_impl() {
  if (fd_ < 0) return;
  if (!flush_impl()) { /* sticky failure already counted in io_errors_ */ }
  if (::close(fd_) != 0) ++io_errors_;
  fd_ = -1;
}

}  // namespace sda::exp
