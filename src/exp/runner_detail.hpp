// Shared plumbing between the serial runner (runner.cpp) and the sharded
// PDES runner (runner_sharded.cpp).  Both build the same system from the
// same ExperimentConfig with the same RNG split order; keeping the
// id-space and trace-event maps in one place is what keeps their
// fingerprints comparable.
#pragma once

#include <cstdint>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/trace.hpp"
#include "src/sched/node.hpp"

namespace sda::exp::detail {

/// Task-id space partitioning: local sources and the process manager must
/// hand out ids that never collide (node-side bookkeeping is keyed by id).
constexpr std::uint64_t local_id_base(int node_index) {
  return (static_cast<std::uint64_t>(node_index) + 1) << 40;
}

inline metrics::TraceEvent to_trace_event(sched::Node::Event e) {
  switch (e) {
    case sched::Node::Event::kSubmitted: return metrics::TraceEvent::kSubmitted;
    case sched::Node::Event::kStarted: return metrics::TraceEvent::kStarted;
    case sched::Node::Event::kPreempted: return metrics::TraceEvent::kPreempted;
    case sched::Node::Event::kCompleted: return metrics::TraceEvent::kCompleted;
    case sched::Node::Event::kAborted: return metrics::TraceEvent::kAborted;
    case sched::Node::Event::kFailed: return metrics::TraceEvent::kFailed;
  }
  return metrics::TraceEvent::kSubmitted;
}

/// True when the run must go through the message fabric: more than one
/// shard, or a modeled control-plane latency (which changes delivery
/// times even on a single shard).  shards == 1 && net_latency == 0 keeps
/// the original synchronous single-engine path, byte for byte.
inline bool message_mode(const ExperimentConfig& c) noexcept {
  return c.shards > 1 || c.net_latency > 0.0;
}

/// One replication on the conservative time-window fabric (DESIGN.md §4c).
/// Same contract as run_once; the config has already been validated.
RunResult run_once_sharded(const ExperimentConfig& config, std::uint64_t seed,
                           metrics::Tracer* tracer);

}  // namespace sda::exp::detail
