#include "src/exp/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/metrics/json_writer.hpp"

namespace sda::exp::net {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

}  // namespace

bool parse_listen_spec(const std::string& text, ListenSpec* spec,
                       std::string* error) {
  if (text.rfind("unix:", 0) == 0) {
    const std::string path = text.substr(5);
    if (path.empty()) {
      if (error != nullptr) *error = "unix: listen spec needs a path";
      return false;
    }
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    spec->kind = ListenSpec::Kind::kUnix;
    spec->path = path;
    return true;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    if (error != nullptr) {
      *error =
          "listen spec must be host:port or unix:/path, got '" + text + "'";
    }
    return false;
  }
  const std::string_view port_text = std::string_view(text).substr(colon + 1);
  std::uint16_t port = 0;
  const char* first = port_text.data();
  const char* last = port_text.data() + port_text.size();
  const std::from_chars_result r = std::from_chars(first, last, port);
  if (r.ec != std::errc() || r.ptr != last) {
    if (error != nullptr) *error = "bad port '" + std::string(port_text) + "'";
    return false;
  }
  spec->kind = ListenSpec::Kind::kTcp;
  spec->host = text.substr(0, colon);
  spec->port = port;
  return true;
}

// --- Poller --------------------------------------------------------------

Poller::Poller() {
#ifdef __linux__
  const char* force_poll = std::getenv("SDA_NET_POLL");
  if (force_poll == nullptr || force_poll[0] == '\0' ||
      force_poll[0] == '0') {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    // epoll_fd_ stays -1 on failure: silently degrade to poll.
  }
#endif
}

Poller::~Poller() {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    if (::close(epoll_fd_) != 0) { /* shutting down anyway */ }
  }
#endif
}

bool Poller::add(int fd, bool want_write) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  }
#endif
  interest_[fd] = want_write;
  return true;
}

bool Poller::update(int fd, bool want_write) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) return false;
  }
#endif
  interest_[fd] = want_write;
  return true;
}

void Poller::remove(int fd) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      // Removing an already-closed fd is fine.
    }
  }
#endif
  interest_.erase(fd);
}

bool Poller::wait(int timeout_ms, std::vector<Event>& events) {
  events.clear();
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    epoll_event ready[64];
    const int n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (n < 0) return errno == EINTR;
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = ready[i].data.fd;
      ev.readable = (ready[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (ready[i].events & EPOLLOUT) != 0;
      ev.error = (ready[i].events & EPOLLERR) != 0;
      events.push_back(ev);
    }
    return true;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want_write] : interest_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) return errno == EINTR;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event ev;
    ev.fd = p.fd;
    ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
    ev.writable = (p.revents & POLLOUT) != 0;
    ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
    events.push_back(ev);
  }
  return true;
}

// --- ServeServer ---------------------------------------------------------

ServeServer::ServeServer(ServeSession& session, const ServerOptions& options)
    : session_(session), options_(options) {}

ServeServer::~ServeServer() {
  for (const auto& [fd, conn] : connections_) {
    if (::close(fd) != 0) { /* already gone */ }
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    if (::close(listen_fd_) != 0) { /* nothing to do */ }
  }
  if (stop_read_fd_ >= 0) {
    if (::close(stop_read_fd_) != 0) { /* ditto */ }
  }
  if (stop_write_fd_ >= 0) {
    if (::close(stop_write_fd_) != 0) { /* ditto */ }
  }
  if (options_.listen.kind == ListenSpec::Kind::kUnix &&
      !options_.listen.path.empty()) {
    if (::unlink(options_.listen.path.c_str()) != 0) { /* best effort */ }
  }
}

bool ServeServer::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return fail("pipe");
  stop_read_fd_ = pipe_fds[0];
  stop_write_fd_ = pipe_fds[1];
  if (!set_nonblocking(stop_read_fd_) || !set_nonblocking(stop_write_fd_) ||
      !set_cloexec(stop_read_fd_) || !set_cloexec(stop_write_fd_)) {
    return fail("fcntl(stop pipe)");
  }

  if (options_.listen.kind == ListenSpec::Kind::kUnix) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.listen.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::unlink(options_.listen.path.c_str()) != 0) { /* fresh path */ }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      return fail("bind(" + options_.listen.path + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket(tcp)");
    const int one = 1;
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one) != 0) {
      return fail("setsockopt(SO_REUSEADDR)");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.listen.port);
    if (::inet_pton(AF_INET, options_.listen.host.c_str(), &addr.sin_addr) !=
        1) {
      if (error != nullptr) {
        *error = "bad listen host '" + options_.listen.host +
                 "' (IPv4 literal required)";
      }
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      return fail("bind(" + options_.listen.host + ":" +
                  std::to_string(options_.listen.port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return fail("getsockname");
    }
    bound_port_ = ntohs(bound.sin_port);
  }
  if (options_.sndbuf_bytes > 0) {
    // Accepted sockets inherit the listener's buffer size, bounding
    // kernel-side buffering per client.
    const int size = options_.sndbuf_bytes;
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_SNDBUF, &size,
                     sizeof size) != 0) {
      return fail("setsockopt(SO_SNDBUF)");
    }
  }
  if (!set_nonblocking(listen_fd_) || !set_cloexec(listen_fd_)) {
    return fail("fcntl(listener)");
  }
  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  if (!poller_.add(listen_fd_, /*want_write=*/false) ||
      !poller_.add(stop_read_fd_, /*want_write=*/false)) {
    return fail("poller add");
  }
  return true;
}

std::string ServeServer::banner() const {
  std::ostringstream out;
  metrics::JsonWriter w(out);
  w.begin_object().kv("schema", "sda.listen.v1");
  if (options_.listen.kind == ListenSpec::Kind::kUnix) {
    w.kv("transport", "unix").kv("path", options_.listen.path);
  } else {
    w.kv("transport", "tcp")
        .kv("host", options_.listen.host)
        .kv("port", static_cast<std::uint64_t>(bound_port_));
  }
  w.kv("backend", poller_.using_epoll() ? "epoll" : "poll")
      .kv("pid", static_cast<std::uint64_t>(::getpid()))
      .end_object();
  return std::move(out).str();
}

void ServeServer::request_stop() {
  // Async-signal-safe: one write, no locks, no allocation.
  const char byte = 's';
  if (stop_write_fd_ >= 0) {
    if (::write(stop_write_fd_, &byte, 1) != 1) {
      // A full pipe means a stop is already pending — good enough.
    }
  }
}

void ServeServer::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error: next readiness round
    }
    if (connections_.size() >= options_.max_connections) {
      ++stats_.rejected_connections;
      if (::close(fd) != 0) { /* rejected anyway */ }
      continue;
    }
    if (!set_nonblocking(fd) || !set_cloexec(fd) ||
        !poller_.add(fd, /*want_write=*/false)) {
      if (::close(fd) != 0) { /* setup failed */ }
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.splitter = LineSplitter(options_.max_line_bytes);
    conn.last_activity_ms = steady_ms();
    connections_.emplace(fd, std::move(conn));
    ++stats_.accepted;
  }
}

void ServeServer::send_to(Connection& conn, std::string_view bytes) {
  if (conn.doomed) return;  // evicted; the close is pending reap
  conn.outbox.append(bytes.data(), bytes.size());
  // Opportunistic immediate write keeps the common case buffer-free.
  while (conn.sent < conn.outbox.size()) {
    const ssize_t n = ::write(conn.fd, conn.outbox.data() + conn.sent,
                              conn.outbox.size() - conn.sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a real error; the poller will tell us
    }
    conn.sent += static_cast<std::size_t>(n);
  }
  if (conn.sent == conn.outbox.size()) {
    conn.outbox.clear();
    conn.sent = 0;
    if (!poller_.update(conn.fd, /*want_write=*/false)) { /* next tick */ }
    return;
  }
  if (conn.outbox.size() - conn.sent > options_.max_write_buffer) {
    // Slow-client backpressure: the peer is not reading its decisions.
    // Only mark it — this runs inside a LineSplitter callback stack
    // (feed_line -> route_replies), where destroying the Connection
    // would free the splitter whose feed() loop is still executing.
    // reap_doomed() performs the close once the stack unwinds.
    ++stats_.evicted_slow;
    conn.doomed = true;
    doomed_fds_.push_back(conn.fd);
    return;
  }
  if (!poller_.update(conn.fd, /*want_write=*/true)) { /* next tick */ }
}

void ServeServer::handle_writable(Connection& conn) {
  while (conn.sent < conn.outbox.size()) {
    const ssize_t n = ::write(conn.fd, conn.outbox.data() + conn.sent,
                              conn.outbox.size() - conn.sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_connection(conn.fd);
      return;
    }
    conn.sent += static_cast<std::size_t>(n);
  }
  conn.outbox.clear();
  conn.sent = 0;
  if (conn.draining) {
    close_connection(conn.fd);
    return;
  }
  if (!poller_.update(conn.fd, /*want_write=*/false)) { /* next tick */ }
}

void ServeServer::route_replies(
    Connection* origin, const std::vector<ServeSession::Reply>& replies) {
  for (const ServeSession::Reply& reply : replies) {
    if (reply.kind == ServeSession::ReplyKind::kSummary) continue;
    int target_fd = -1;
    if (reply.kind == ServeSession::ReplyKind::kDecision && reply.has_id) {
      // Decisions deliver only over the id's registered route.  No
      // route — the sub was recovered by journal replay (routes are not
      // rebuilt across restarts) or its owner's route was dropped —
      // means orphaned: never fall back to whichever connection
      // happened to trigger the pump.
      const auto route = id_routes_.find(reply.id);
      if (route == id_routes_.end()) {
        ++stats_.orphaned_replies;
        continue;
      }
      target_fd = route->second;
      // A decision is final: the route has served its purpose.
      id_routes_.erase(route);
    } else if (origin != nullptr) {
      target_fd = origin->fd;
    }
    const auto it =
        target_fd >= 0 ? connections_.find(target_fd) : connections_.end();
    if (it == connections_.end() || it->second.doomed) {
      ++stats_.orphaned_replies;
      continue;
    }
    send_to(it->second, reply.line);
  }
}

void ServeServer::feed_line(Connection& conn, std::string_view line,
                            bool oversized) {
  ++stats_.lines;
  // Pre-parse (cheap, bounded) to learn whether this is a submission —
  // its decision may resolve long after this call, triggered by another
  // client, so the id -> connection route must exist before the
  // admission controller ever sees the line.
  bool registered_here = false;
  std::uint64_t sub_id = 0;
  if (!oversized) {
    // Peek with the session's own limits: a stricter default here would
    // reject lines the session accepts, losing their decision routes.
    const ParsedLine peek = parse_serve_line(line, session_.limits());
    if (peek.verb == "sub" && peek.has_id &&
        id_routes_.find(peek.id) == id_routes_.end()) {
      id_routes_.emplace(peek.id, conn.fd);
      registered_here = true;
      sub_id = peek.id;
    }
  }
  std::vector<ServeSession::Reply> replies;
  if (oversized) {
    // The splitter handed over a truncated prefix and is discarding the
    // rest; answer directly instead of feeding a half line through the
    // session (whose own limit check would see a plausible length).
    ServeSession::Reply r;
    r.kind = ServeSession::ReplyKind::kError;
    std::ostringstream text;
    metrics::JsonWriter w(text);
    w.begin_object()
        .kv("schema", "sda.error.v1")
        .kv("code", to_string(ProtocolErrorCode::kLimit))
        .kv("reason", "line exceeds transport limit")
        .end_object();
    text << "\n";
    r.line = std::move(text).str();
    replies.push_back(std::move(r));
  } else {
    session_.handle_line(line, replies);
  }
  if (registered_here) {
    // If the line itself failed (bad tree, duplicate, …) no decision
    // will ever come; drop the tentative route.
    for (const ServeSession::Reply& reply : replies) {
      if (reply.kind == ServeSession::ReplyKind::kError && reply.has_id &&
          reply.id == sub_id) {
        id_routes_.erase(sub_id);
        break;
      }
    }
  }
  route_replies(&conn, replies);
}

void ServeServer::handle_readable(Connection& conn) {
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(conn.fd);
      return;
    }
    const int fd = conn.fd;
    if (n == 0) {
      // Peer closed: a final unterminated line still counts (matching
      // the istream harness's getline semantics), then flush replies.
      conn.splitter.finish([&](std::string_view line, bool oversized) {
        if (!conn.doomed) feed_line(conn, line, oversized);
      });
      const bool evicted = conn.doomed;
      reap_doomed();
      if (evicted) return;  // the reap destroyed conn
      if (conn.outbox.empty()) {
        close_connection(fd);
      } else {
        conn.draining = true;  // flush pending replies first
      }
      return;
    }
    conn.last_activity_ms = steady_ms();
    const bool had_partial = conn.splitter.has_partial();
    // feed_line can doom connections (slow-client backpressure) but
    // never destroys one while the splitter's feed loop runs — the
    // splitter lives inside the Connection.  A doomed peer's remaining
    // lines are dropped; the close happens after the stack unwinds.
    conn.splitter.feed(std::string_view(buf, static_cast<std::size_t>(n)),
                       [&](std::string_view line, bool oversized) {
                         if (!conn.doomed) feed_line(conn, line, oversized);
                       });
    const bool evicted = conn.doomed;
    reap_doomed();
    if (evicted) return;  // the reap destroyed conn
    if (conn.splitter.has_partial()) {
      if (!had_partial || conn.partial_since_ms == 0) {
        conn.partial_since_ms = conn.last_activity_ms;
      }
    } else {
      conn.partial_since_ms = 0;
    }
  }
}

void ServeServer::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  poller_.remove(fd);
  if (::close(fd) != 0) { /* nothing better to do */ }
  connections_.erase(it);
  // Routes pointing at this client stay: later decisions for its
  // submissions surface as orphaned_replies, which is the honest count.
}

void ServeServer::reap_doomed() {
  while (!doomed_fds_.empty()) {
    const int fd = doomed_fds_.back();
    doomed_fds_.pop_back();
    close_connection(fd);
  }
}

void ServeServer::enforce_timeouts(std::uint64_t now_ms) {
  std::vector<int> idle, stuck;
  for (const auto& [fd, conn] : connections_) {
    if (options_.idle_timeout_ms > 0 &&
        now_ms - conn.last_activity_ms >
            static_cast<std::uint64_t>(options_.idle_timeout_ms)) {
      idle.push_back(fd);
    } else if (options_.request_timeout_ms > 0 &&
               conn.partial_since_ms != 0 &&
               now_ms - conn.partial_since_ms >
                   static_cast<std::uint64_t>(options_.request_timeout_ms)) {
      stuck.push_back(fd);
    }
  }
  for (const int fd : idle) {
    ++stats_.evicted_idle;
    close_connection(fd);
  }
  for (const int fd : stuck) {
    ++stats_.evicted_request;
    close_connection(fd);
  }
}

void ServeServer::drain(std::ostream& out) {
  // Stop accepting; the fd stays open until destruction so late
  // connectors queue against a dead listener instead of racing a
  // rebinding of the port.
  poller_.remove(listen_fd_);

  std::vector<ServeSession::Reply> replies;
  session_.finish(replies, &stats_);
  route_replies(nullptr, replies);
  reap_doomed();  // routing can evict; don't wait on a dead outbox
  for (const ServeSession::Reply& reply : replies) {
    if (reply.kind == ServeSession::ReplyKind::kSummary) out << reply.line;
  }
  out.flush();

  // Best-effort outbox flush inside the drain budget.
  const std::uint64_t deadline =
      steady_ms() + static_cast<std::uint64_t>(options_.drain_timeout_ms);
  std::vector<Poller::Event> events;
  while (steady_ms() < deadline) {
    bool pending = false;
    for (const auto& [fd, conn] : connections_) {
      if (!conn.outbox.empty()) pending = true;
    }
    if (!pending) break;
    if (!poller_.wait(10, events)) break;
    for (const Poller::Event& ev : events) {
      const auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      if (ev.writable || ev.readable || ev.error) handle_writable(it->second);
    }
  }
  std::vector<int> open_fds;
  for (const auto& [fd, conn] : connections_) open_fds.push_back(fd);
  for (const int fd : open_fds) close_connection(fd);
}

int ServeServer::run(std::ostream& out) {
  // The calling thread owns the event loop from here until return;
  // every handler below requires this role.
  util::RoleGuard loop_owner(loop_);
  std::vector<Poller::Event> events;
  while (!stop_requested_) {
    if (!poller_.wait(options_.tick_ms, events)) return 1;
    for (const Poller::Event& ev : events) {
      if (ev.fd == stop_read_fd_) {
        char sink[16];
        while (::read(stop_read_fd_, sink, sizeof sink) > 0) {
        }
        stop_requested_ = true;
        continue;
      }
      if (ev.fd == listen_fd_) {
        accept_clients();
        continue;
      }
      const auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      if (ev.error) {
        close_connection(ev.fd);
        continue;
      }
      if (ev.writable) {
        handle_writable(it->second);
        if (connections_.find(ev.fd) == connections_.end()) continue;
      }
      if (ev.readable) handle_readable(it->second);
    }
    enforce_timeouts(steady_ms());
    session_.on_tick();  // journal flush-interval enforcement
  }
  drain(out);
  return 0;
}

}  // namespace sda::exp::net
