#include "src/exp/runner.hpp"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/exp/runner_detail.hpp"
#include "src/exp/validate.hpp"

#include "src/core/strategy.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/injector.hpp"
#include "src/sched/node.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/engine.hpp"
#include "src/util/rng.hpp"
#include "src/workload/global_source.hpp"
#include "src/workload/local_source.hpp"
#include "src/workload/rates.hpp"
#include "src/workload/taskgraph_source.hpp"

namespace sda::exp {

using detail::local_id_base;
using detail::to_trace_event;

RunResult run_once(const ExperimentConfig& config, std::uint64_t seed,
                   metrics::Tracer* tracer) {
  // Reject inconsistent configs with actionable errors before any part of
  // the system is assembled (callers going through run_experiment have
  // already paid this, but run_once is a public entry point of its own).
  config.validate_or_throw();

  // Sharded (or latency-modeling) runs go through the time-window fabric;
  // the default shards=1, net_latency=0 keeps this original synchronous
  // single-engine path untouched.
  if (detail::message_mode(config)) {
    return detail::run_once_sharded(config, seed, tracer);
  }

  sim::Engine engine(sim::make_timer_queue(config.timer_queue));
  util::Rng master(seed);

  // --- nodes ---------------------------------------------------------------
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  nodes.reserve(static_cast<std::size_t>(config.k));
  const int link_count =
      config.global_kind == GlobalKind::kGraph ? config.link_count : 0;
  const int total_nodes = config.k + link_count;
  for (int i = 0; i < total_nodes; ++i) {
    sched::Node::Config nc;
    nc.index = i;
    nc.abort_policy = config.local_abort;
    nc.preemptive = config.preemptive;
    if (!config.node_speeds.empty() && i < config.k) {
      nc.speed = config.node_speeds[static_cast<std::size_t>(i)];
    }
    nodes.push_back(std::make_unique<sched::Node>(
        engine, sched::make_scheduler(config.scheduler_policy), nc));
    node_ptrs.push_back(nodes.back().get());
  }

  // --- process manager -------------------------------------------------------
  core::ProcessManager::Config pmc;
  pmc.psp = core::make_psp_strategy(config.psp);
  pmc.ssp = core::make_ssp_strategy(config.ssp);
  pmc.abort_mode = config.pm_abort;
  pmc.mark_subtasks_non_abortable = config.subtasks_non_abortable;
  pmc.compute_node_count = config.k;
  if (config.max_retries_per_run >= 0) {
    pmc.recovery.max_retries_per_run = config.max_retries_per_run;
  }
  pmc.recovery.backoff_base = config.retry_backoff_base;
  pmc.recovery.backoff_factor = config.retry_backoff_factor;
  pmc.recovery.failover = config.retry_failover;
  pmc.recovery.deadline_mode = config.retry_deadline == "stale"
                                   ? core::RetryDeadline::kStale
                                   : core::RetryDeadline::kSdaRecompute;
  pmc.recovery.shed_negative_slack = config.shed_negative_slack;
  core::ProcessManager pm(engine, node_ptrs, std::move(pmc));

  // --- admission gate --------------------------------------------------------
  // Built before the handlers so run completions can retire ledger
  // entries.  The controller draws no RNG and schedules no events, so an
  // absent gate leaves the simulation bit-identical.
  std::unique_ptr<core::AdmissionController> admission;
  if (config.admission) {
    admission =
        std::make_unique<core::AdmissionController>(config.admission_config());
  }
  core::AdmissionController* admission_ptr = admission.get();

  // --- metrics ----------------------------------------------------------------
  metrics::Collector collector;
  collector.set_warmup(config.warmup_fraction * config.sim_time);
  if (config.tardiness_histograms) collector.enable_tardiness_histograms();
  if (config.distributions) collector.enable_distributions();
  pm.set_global_handler([&, tracer](const core::GlobalTaskRecord& rec) {
    if (admission_ptr != nullptr) admission_ptr->on_finished(rec.run_id);
    collector.record_global(rec);
    if (tracer != nullptr) {
      const metrics::TraceEvent ev =
          rec.shed ? metrics::TraceEvent::kGlobalShed
                   : (rec.aborted ? metrics::TraceEvent::kGlobalAborted
                                  : metrics::TraceEvent::kGlobalCompleted);
      tracer->add(metrics::TraceRecord{rec.finished_at, ev, 0, rec.run_id, -1,
                                       rec.real_deadline});
    }
  });
  pm.set_subtask_handler(
      [&](const task::SimpleTask& t) { collector.record_simple(t); });
  if (tracer != nullptr) {
    pm.set_submit_observer(
        [&engine, tracer](std::uint64_t run_id, sim::Time deadline) {
          tracer->add(metrics::TraceRecord{engine.now(),
                                           metrics::TraceEvent::kGlobalSubmitted,
                                           0, run_id, -1, deadline});
        });
  }
  if (tracer != nullptr) {
    for (auto& node : nodes) {
      const int node_index = node->index();
      node->set_observer([&engine, tracer, node_index](
                             sched::Node::Event e, const task::SimpleTask& t) {
        tracer->add(metrics::TraceRecord{engine.now(), to_trace_event(e),
                                         t.id, t.owner_run, node_index,
                                         t.attrs.virtual_deadline});
      });
    }
  }

  for (auto& node : nodes) {
    node->set_completion_handler([&](const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        collector.record_simple(*t);
      } else {
        pm.handle_completion(t);
      }
    });
    node->set_abort_handler([&](const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        collector.record_simple(*t);  // a locally aborted local is a miss
      } else {
        pm.handle_local_abort(t);
      }
    });
    node->set_failure_handler([&](const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        collector.record_simple(*t);  // a fault-killed local is a miss
      } else {
        pm.handle_failure(t);  // recovery policy decides: retry or shed
      }
    });
  }

  // --- workload ----------------------------------------------------------------
  workload::RateParams rp;
  rp.k = config.k;
  rp.load = config.load;
  rp.frac_local = config.frac_local;
  rp.mu_local = config.mu_local;
  rp.expected_global_work = config.expected_global_work();
  const workload::Rates rates = workload::solve_rates(rp);

  std::vector<std::unique_ptr<workload::LocalSource>> local_sources;
  for (int i = 0; i < config.k; ++i) {
    workload::LocalSource::Config lc;
    lc.lambda = rates.lambda_local;
    lc.mean_exec = 1.0 / config.mu_local;
    lc.slack_min = config.slack_min;
    lc.slack_max = config.slack_max;
    lc.abort_at_real_deadline =
        config.pm_abort == core::PmAbortMode::kRealDeadline;
    lc.id_base = local_id_base(i);
    lc.burst_factor = config.local_burst_factor;
    lc.burst_cycle = config.local_burst_cycle;
    lc.exec = workload::make_exec_distribution(
        config.service_dist, 1.0 / config.mu_local, config.service_cv);
    local_sources.push_back(std::make_unique<workload::LocalSource>(
        engine, *nodes[static_cast<std::size_t>(i)], collector,
        master.split(), lc));
    local_sources.back()->start();
  }

  const auto [gslack_min, gslack_max] = config.resolved_global_slack();
  std::unique_ptr<workload::ParallelGlobalSource> parallel_source;
  std::unique_ptr<workload::GraphGlobalSource> graph_source;
  if (config.global_kind == GlobalKind::kParallel) {
    workload::ParallelGlobalSource::Config gc;
    gc.lambda = rates.lambda_global;
    gc.k = config.k;
    gc.n_min = config.n_min;
    gc.n_max = config.n_max;
    gc.mean_subtask_exec = 1.0 / config.mu_subtask;
    gc.slack_min = gslack_min;
    gc.slack_max = gslack_max;
    gc.pex = config.pex;
    gc.exec_spread = config.subtask_exec_spread;
    gc.exec = workload::make_exec_distribution(
        config.service_dist, 1.0 / config.mu_subtask, config.service_cv);
    gc.placement = workload::make_placement(
        config.placement,
        std::vector<const sched::Node*>(node_ptrs.begin(), node_ptrs.end()));
    gc.burst_factor = config.global_burst_factor;
    gc.burst_cycle = config.global_burst_cycle;
    gc.admission = admission_ptr;
    parallel_source = std::make_unique<workload::ParallelGlobalSource>(
        engine, pm, master.split(), gc);
    parallel_source->start();
  } else {
    workload::GraphGlobalSource::Config gc;
    gc.lambda = rates.lambda_global;
    gc.k = config.k;
    gc.stage_widths = config.stage_widths;
    gc.mean_subtask_exec = 1.0 / config.mu_subtask;
    gc.slack_min = gslack_min;
    gc.slack_max = gslack_max;
    gc.pex = config.pex;
    for (int link = 0; link < link_count; ++link) {
      gc.link_nodes.push_back(config.k + link);
    }
    gc.mean_msg_time = config.mean_msg_time;
    gc.exec = workload::make_exec_distribution(
        config.service_dist, 1.0 / config.mu_subtask, config.service_cv);
    graph_source = std::make_unique<workload::GraphGlobalSource>(
        engine, pm, master.split(), gc);
    graph_source->start();
  }

  // --- fault injection --------------------------------------------------------
  // The fault stream is split from the master only when faults are on, and
  // only after every workload source took its split: a fail-free config
  // draws exactly the same substreams as a build without this block, so
  // fault_rate = 0 reproduces the seed numbers bit-for-bit.
  std::unique_ptr<fault::FaultInjector> injector;
  if (config.faults_enabled()) {
    util::Rng fault_master = master.split();
    fault::FaultConfig fc;
    fc.subtask_failure_rate = config.fault_rate;
    fc.crash_mean_uptime = config.crash_mean_uptime;
    fc.crash_mean_downtime = config.crash_mean_downtime;
    fc.crash_discards_queue = config.crash_discards_queue;
    fc.msg_loss_rate = config.msg_loss_rate;
    fc.msg_extra_delay_mean = config.msg_extra_delay_mean;
    fault::FaultPlan plan = fault::FaultPlan::generate(
        fc, config.k, config.sim_time, fault_master.split());
    injector = std::make_unique<fault::FaultInjector>(
        engine, node_ptrs, config.k, std::move(plan), fault_master.split());
    injector->arm();
  }

  // --- run -------------------------------------------------------------------
  engine.run_until(config.sim_time);

  // --- results ----------------------------------------------------------------
  RunResult result;
  result.collector = std::move(collector);
  double util = 0.0, link_util = 0.0;
  std::uint64_t local_aborts = 0, preemptions = 0;
  for (const auto& node : nodes) {
    (node->index() < config.k ? util : link_util) += node->utilization();
    result.node_utilizations.push_back(node->utilization());
    result.node_counters.push_back(node->perf_counters());
    local_aborts += node->aborted_locally();
    preemptions += node->preemptions();
  }
  result.mean_utilization = util / static_cast<double>(config.k);
  if (link_count > 0) {
    result.mean_link_utilization = link_util / static_cast<double>(link_count);
  }
  result.events_fired = engine.events_fired();
  for (const auto& src : local_sources) {
    result.locals_generated += src->generated();
  }
  result.globals_generated =
      parallel_source ? parallel_source->generated()
                      : (graph_source ? graph_source->generated() : 0);
  result.globals_completed = pm.completed_runs();
  result.globals_aborted = pm.aborted_runs();
  result.local_scheduler_aborts = local_aborts;
  result.resubmissions = pm.resubmissions();
  result.preemptions = preemptions;
  if (injector) {
    result.node_crashes = injector->crashes();
    result.transient_failures = injector->transient_failures();
    result.messages_lost = injector->messages_lost();
  }
  result.fault_retries = pm.fault_retries();
  result.failovers = pm.failovers();
  result.globals_shed = pm.shed_runs();
  if (admission_ptr != nullptr) {
    result.admission_enabled = true;
    result.admission = admission_ptr->stats();
    result.plan_cache = admission_ptr->cache_stats();
    result.admission_final_state = admission_ptr->state();
    if (parallel_source) {
      result.globals_not_admitted = parallel_source->not_admitted();
    }
  }
  return result;
}

metrics::Report run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, util::ThreadPool::shared(), nullptr);
}

metrics::Report run_experiment(const ExperimentConfig& config,
                               util::ThreadPool& pool,
                               std::vector<std::uint64_t>* fingerprints) {
  validate_or_throw(config);
  // Replications are fully independent simulations, so fan them out over
  // the pool; results are folded in replication order below, keeping the
  // report bit-identical to the sequential fold regardless of pool size.
  const std::size_t reps = static_cast<std::size_t>(config.replications);
  std::vector<metrics::Collector> collectors(reps);
  std::vector<std::uint64_t> fps(fingerprints != nullptr ? reps : 0);
  auto one_rep = [&](std::size_t rep) {
    const std::uint64_t seed =
        replication_seed(config.seed, static_cast<int>(rep));
    if (fingerprints != nullptr) {
      // Capacity 1: only the rolling fingerprint matters, not the records.
      metrics::Tracer tracer(1);
      collectors[rep] = std::move(run_once(config, seed, &tracer).collector);
      fps[rep] = tracer.fingerprint();
    } else {
      collectors[rep] = std::move(run_once(config, seed).collector);
    }
  };
  if (detail::message_mode(config)) {
    // A sharded replication already spawns `shards` worker threads; fanning
    // replications over the pool on top of that would oversubscribe every
    // core.  Replication order is the fold order either way.
    for (std::size_t rep = 0; rep < reps; ++rep) one_rep(rep);
  } else {
    pool.parallel_for(reps, one_rep);
  }
  if (fingerprints != nullptr) *fingerprints = std::move(fps);
  metrics::Report report;
  for (const metrics::Collector& c : collectors) report.add_replication(c);
  return report;
}

}  // namespace sda::exp
