#include "src/exp/serve.hpp"

#include <chrono>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/json_writer.hpp"
#include "src/metrics/percentile.hpp"
#include "src/task/notation.hpp"
#include "src/task/tree.hpp"
#include "src/util/fnv.hpp"

namespace sda::exp {

namespace {

using Clock = std::chrono::steady_clock;

std::string render_decision(std::uint64_t id, double at,
                            const core::AdmissionOutcome& outcome,
                            bool retry_hint, double retry_after) {
  std::ostringstream out;
  metrics::JsonWriter w(out);
  w.begin_object()
      .kv("schema", "sda.admit.v1")
      .kv("id", id)
      .kv("at", at)
      .kv("decision", core::to_string(outcome.decision))
      .kv("state", core::to_string(outcome.state))
      .kv("reason", outcome.reason)
      .kv("pressure", outcome.pressure)
      .kv("deadline", outcome.deadline)
      .kv("cache_hit", outcome.cache_hit);
  if (!outcome.plan.empty()) {
    w.key("leaves").begin_array();
    for (const core::PlanEntry& a : outcome.plan) {
      w.begin_object()
          .kv("node", a.node)
          .kv("dispatch", a.planned_dispatch)
          .kv("deadline", a.virtual_deadline)
          .end_object();
    }
    w.end_array();
  }
  if (retry_hint) w.kv("retry_after", retry_after);
  w.end_object();
  out << "\n";
  return std::move(out).str();
}

std::string render_error(ProtocolErrorCode code, bool has_id,
                         std::uint64_t id, double at,
                         const std::string& message) {
  std::ostringstream out;
  metrics::JsonWriter w(out);
  w.begin_object().kv("schema", "sda.error.v1");
  if (has_id) w.kv("id", id);
  w.kv("at", at)
      .kv("code", to_string(code))
      .kv("reason", message)
      .end_object();
  out << "\n";
  return std::move(out).str();
}

}  // namespace

ServeSession::ServeSession(const ServeOptions& options)
    : options_(options), controller_(options.admission) {}

bool ServeSession::open_journal(std::string* diag) {
  util::RoleGuard own(owner_);
  if (options_.journal_path.empty()) return true;
  const JournalReadResult existing = read_journal(options_.journal_path);
  if (existing.ok) {
    // Crash recovery: re-feed every journaled event through the normal
    // code path with emission, journaling, and timing suppressed.  The
    // journal only ever holds lines that validated, so this cannot
    // error, and the controller lands bit-identical to where the
    // previous process stood when the record was written.
    replaying_ = true;
    std::vector<Reply> scratch;
    for (const JournalRecord& record : existing.records) {
      if (record.type != 'E') continue;
      handle_line_impl(record.payload, scratch);
      ++result_.replayed;
    }
    replaying_ = false;
    replay_truncated_ = existing.truncated;
    replay_diagnostic_ = existing.diagnostic;
  }
  // existing.ok == false usually means "no journal yet" (fresh start);
  // a present-but-foreign file is rejected by the writer below.
  if (options_.journal_replay_only) return true;
  JournalWriter::Config config;
  config.flush_every = options_.journal_flush_every;
  config.flush_interval =
      std::chrono::milliseconds(options_.journal_flush_interval_ms);
  return journal_.open(options_.journal_path, config, diag);
}

void ServeSession::journal_line(std::string_view text) {
  if (replaying_ || !journal_.is_open()) return;
  // Write-ahead: the record is buffered before the controller mutates,
  // so a journaled-but-unapplied tail at crash time merely replays into
  // the same state the line would have produced.
  if (!journal_.append_event(text)) { /* sticky; counted in io_errors */ }
}

void ServeSession::emit_decision(std::vector<Reply>& replies,
                                 std::uint64_t id,
                                 const core::AdmissionOutcome& outcome) {
  pending_.erase(id);
  if (outcome.decision == core::AdmissionDecision::kAdmit ||
      outcome.decision == core::AdmissionDecision::kAdmitDegraded) {
    live_.insert(id);
  }
  ++result_.decisions;
  if (replaying_) return;
  const bool hint =
      options_.retry_hints &&
      (outcome.decision == core::AdmissionDecision::kShed ||
       outcome.decision == core::AdmissionDecision::kBackpressure);
  const double retry_after =
      now_ + options_.retry_after_base * (1.0 + outcome.pressure);
  Reply reply;
  reply.kind = ReplyKind::kDecision;
  reply.has_id = true;
  reply.id = id;
  reply.line = render_decision(id, now_, outcome, hint, retry_after);
  replies.push_back(std::move(reply));
}

void ServeSession::emit_error(std::vector<Reply>& replies,
                              ProtocolErrorCode code, bool has_id,
                              std::uint64_t id, const std::string& message) {
  ++result_.errors;
  if (replaying_) return;  // unreachable: the journal holds valid lines
  Reply reply;
  reply.kind = ReplyKind::kError;
  reply.has_id = has_id;
  reply.id = id;
  reply.line = render_error(code, has_id, id, now_, message);
  replies.push_back(std::move(reply));
}

void ServeSession::emit_resolved(
    std::vector<Reply>& replies,
    const std::vector<std::pair<std::uint64_t, core::AdmissionOutcome>>&
        resolved) {
  for (const auto& [id, outcome] : resolved) {
    emit_decision(replies, id, outcome);
  }
}

void ServeSession::handle_line(std::string_view text,
                               std::vector<Reply>& replies) {
  util::RoleGuard own(owner_);
  handle_line_impl(text, replies);
}

void ServeSession::handle_line_impl(std::string_view text,
                                    std::vector<Reply>& replies) {
  const ParsedLine line = parse_serve_line(text, options_.limits);
  if (line.ignorable) return;
  if (line.code != ProtocolErrorCode::kNone) {
    emit_error(replies, line.code, line.has_id, line.id, line.error);
    return;
  }
  // The stream clock is monotonic; a violating line is answered and
  // discarded *without* advancing state — malformed input must leave
  // nothing behind, or the journal could not skip it.
  if (line.has_at && line.at < now_) {
    emit_error(replies, ProtocolErrorCode::kClock, line.has_id, line.id,
               "time went backwards (stream clock is monotonic)");
    return;
  }

  if (line.verb == "done") {
    if (!line.has_id) {
      emit_error(replies, ProtocolErrorCode::kField, line.has_id, line.id,
                 "done needs id=");
      return;
    }
    const bool is_live = live_.count(line.id) != 0;
    const bool is_pending = pending_.count(line.id) != 0;
    if (!is_live && !is_pending) {
      emit_error(replies, ProtocolErrorCode::kUnknownId, true, line.id,
                 "done for unknown or already-retired id " +
                     std::to_string(line.id));
      return;
    }
    journal_line(text);  // state-changing from here on
    if (line.has_at) now_ = line.at;
    if (is_live) {
      if (line.has_leaf) {
        // Partial completion: retire one leaf's reservation, shrinking
        // the completion-time ledgers immediately.  The run stays live
        // until a whole-run done retires the rest.
        controller_.on_leaf_finished(line.id, line.leaf);
      } else {
        controller_.on_finished(line.id);
        live_.erase(line.id);
      }
    }
    // A done for a parked submission retires nothing (it never ran),
    // but either way freed capacity or an advanced clock is a retry
    // moment for the queue.
    emit_resolved(replies, controller_.pump(now_));
    return;
  }
  if (line.verb != "sub") {
    emit_error(replies, ProtocolErrorCode::kVerb, line.has_id, line.id,
               "unknown verb '" + line.verb + "'");
    return;
  }
  if (!line.has_id || !line.has_at || !line.has_deadline || !line.has_tree) {
    emit_error(replies, ProtocolErrorCode::kField, line.has_id, line.id,
               "sub needs id=, at=, deadline=, tree=");
    return;
  }
  if (line.deadline <= 0.0) {
    emit_error(replies, ProtocolErrorCode::kField, line.has_id, line.id,
               "deadline must be positive");
    return;
  }
  if (live_.count(line.id) != 0 || pending_.count(line.id) != 0) {
    emit_error(replies, ProtocolErrorCode::kDuplicateId, true, line.id,
               "duplicate id " + std::to_string(line.id) +
                   " (still in flight)");
    return;
  }
  ++result_.submissions;

  task::TreePtr tree;
  try {
    tree = task::parse_notation(line.tree);
  } catch (const std::exception& e) {
    emit_error(replies, ProtocolErrorCode::kTree, true, line.id, e.what());
    return;
  }
  const std::string invalid = task::validate(*tree);
  if (!invalid.empty()) {
    emit_error(replies, ProtocolErrorCode::kTree, true, line.id, invalid);
    return;
  }

  journal_line(text);  // validated: this line now owns its state change
  now_ = line.at;

  // Earlier-parked submissions get first claim on freed capacity.
  emit_resolved(replies, controller_.pump(now_));

  const bool timing =
      !replaying_ &&
      (options_.measure_latency || options_.decision_deadline_ns > 0);
  const Clock::time_point t0 = timing ? Clock::now() : Clock::time_point{};
  core::AdmissionController::SubmitResult sr =
      controller_.submit(std::move(tree), now_, now_ + line.deadline, line.id);
  if (timing) {
    const auto dt = Clock::now() - t0;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
    if (options_.measure_latency) {
      latency_samples_ns_.push_back(ns);
      busy_seconds_ += ns * 1e-9;
    }
    if (options_.decision_deadline_ns > 0 &&
        ns > static_cast<double>(options_.decision_deadline_ns)) {
      // The decision itself blew its latency budget: a wall-clock
      // overload signal the load-derived pressure cannot see.  Trip the
      // state machine into shedding; hysteresis governs recovery.
      // (Not journaled — wall time does not replay.)
      controller_.trip_shedding();
    }
  }
  if (sr.queued) {
    pending_.insert(line.id);
  } else {
    emit_decision(replies, line.id, sr.outcome);
  }
}

void ServeSession::on_tick() {
  util::RoleGuard own(owner_);
  if (journal_.is_open()) {
    if (!journal_.maybe_flush(Clock::now())) { /* counted in io_errors */ }
  }
}

std::uint64_t ServeSession::state_fingerprint() const {
  util::RoleGuard own(owner_);
  return fingerprint_impl();
}

std::uint64_t ServeSession::fingerprint_impl() const {
  // Covers exactly the journal-reproducible state: the controller (its
  // own fingerprint walks ledgers, queue, pressure, counters) plus the
  // session's id-routing sets.  Per-process observables (error counts,
  // replay counts, latency) are deliberately outside.
  std::uint64_t h = controller_.fingerprint();
  util::fnv1a_mix_value(h, live_.size());
  for (const std::uint64_t id : live_) util::fnv1a_mix_value(h, id);
  util::fnv1a_mix_value(h, pending_.size());
  for (const std::uint64_t id : pending_) util::fnv1a_mix_value(h, id);
  return h;
}

void ServeSession::finish(std::vector<Reply>& replies,
                          const ServeNetStats* net) {
  util::RoleGuard own(owner_);
  // The fingerprint published in the summary describes the state after
  // every accepted line but *before* the drain flush below — exactly
  // what replaying the journal reproduces (--recover-check prints the
  // same value), since the flush itself is not a journaled input.
  const std::uint64_t fp = fingerprint_impl();
  emit_resolved(replies, controller_.flush(now_));

  result_.stats = controller_.stats();
  result_.cache = controller_.cache_stats();

  std::ostringstream out;
  metrics::JsonWriter w(out);
  w.begin_object()
      .kv("schema", "sda.serve.summary.v1")
      .kv("submissions", result_.submissions)
      .kv("decisions", result_.decisions)
      .kv("errors", result_.errors)
      .kv("admitted", result_.stats.admitted)
      .kv("admitted_degraded", result_.stats.admitted_degraded)
      .kv("rejected", result_.stats.rejected)
      .kv("shed", result_.stats.shed)
      .kv("backpressure", result_.stats.backpressure)
      .kv("queued", result_.stats.queued)
      .kv("queue_high_water",
          static_cast<std::uint64_t>(result_.stats.queue_high_water))
      .kv("final_state", core::to_string(controller_.state()))
      .kv("final_pressure", controller_.pressure());
  w.key("transitions")
      .begin_object()
      .kv("to_degraded", result_.stats.to_degraded)
      .kv("to_shedding", result_.stats.to_shedding)
      .kv("to_normal", result_.stats.to_normal)
      .end_object();
  w.key("plan_cache")
      .begin_object()
      .kv("hits", result_.cache.hits)
      .kv("misses", result_.cache.misses)
      .kv("evictions", result_.cache.evictions)
      .end_object();
  if (options_.measure_latency) {
    metrics::LogHistogram latency_ns(1.0, 1e9, 8);  // 1 ns .. 1 s
    for (const double ns : latency_samples_ns_) latency_ns.add(ns);
    const metrics::Quantiles q = metrics::summarize(latency_ns);
    w.key("assign_latency_ns")
        .begin_object()
        .kv("count", static_cast<std::uint64_t>(q.count))
        .kv("mean", q.mean)
        .kv("p50", q.p50)
        .kv("p90", q.p90)
        .kv("p99", q.p99)
        .kv("p999", q.p999)
        .end_object();
    w.kv("admissions_per_sec",
         busy_seconds_ > 0.0
             ? static_cast<double>(result_.stats.admitted +
                                   result_.stats.admitted_degraded) /
                   busy_seconds_
             : 0.0);
  }
  if (!options_.journal_path.empty()) {
    char fp_hex[17];
    std::snprintf(fp_hex, sizeof fp_hex, "%016llx",
                  static_cast<unsigned long long>(fp));
    w.key("journal")
        .begin_object()
        .kv("records", journal_.records_appended())
        .kv("replayed", result_.replayed)
        .kv("io_errors", journal_.io_errors())
        .kv("fingerprint", fp_hex)
        .end_object();
  }
  if (net != nullptr) {
    w.key("net")
        .begin_object()
        .kv("accepted", net->accepted)
        .kv("rejected_connections", net->rejected_connections)
        .kv("evicted_slow", net->evicted_slow)
        .kv("evicted_idle", net->evicted_idle)
        .kv("evicted_request", net->evicted_request)
        .kv("lines", net->lines)
        .kv("orphaned_replies", net->orphaned_replies)
        .end_object();
  }
  w.end_object();
  std::string summary = std::move(out).str();

  if (journal_.is_open()) {
    // Checkpoint = the summary itself, durably flushed: a later replay
    // can tell a clean drain from a crash mid-stream.
    if (!journal_.append_checkpoint(summary)) { /* counted in io_errors */ }
    journal_.close();
  }

  Reply reply;
  reply.kind = ReplyKind::kSummary;
  reply.line = summary + "\n";
  replies.push_back(std::move(reply));
}

ServeResult serve_stream(std::istream& in, std::ostream& out,
                         const ServeOptions& options) {
  ServeSession session(options);
  std::string diag;
  if (!session.open_journal(&diag)) {
    out << render_error(ProtocolErrorCode::kIo, false, 0, 0.0, diag);
    return session.result();
  }
  std::vector<ServeSession::Reply> replies;
  std::string text;
  while (std::getline(in, text)) {
    replies.clear();
    session.handle_line(text, replies);
    for (const ServeSession::Reply& r : replies) out << r.line;
  }
  replies.clear();
  session.finish(replies);
  for (const ServeSession::Reply& r : replies) out << r.line;
  return session.result();
}

}  // namespace sda::exp
