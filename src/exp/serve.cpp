#include "src/exp/serve.hpp"

#include <chrono>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/json_writer.hpp"
#include "src/metrics/percentile.hpp"
#include "src/task/notation.hpp"
#include "src/task/tree.hpp"

namespace sda::exp {

namespace {

/// One parsed `sub`/`done` line.  `tree=` swallows the rest of the line
/// (the notation's serial separator is a space).
struct Line {
  std::string verb;
  std::uint64_t id = 0;
  bool has_id = false;
  double at = 0.0;
  bool has_at = false;
  double deadline = 0.0;
  bool has_deadline = false;
  std::string tree;
  bool has_tree = false;
  std::string error;  ///< non-empty = malformed
};

Line parse_line(const std::string& text) {
  Line line;
  std::istringstream in(text);
  in >> line.verb;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      line.error = "expected key=value, got '" + token + "'";
      return line;
    }
    const std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    try {
      if (key == "id") {
        line.id = std::stoull(value);
        line.has_id = true;
      } else if (key == "at") {
        line.at = std::stod(value);
        line.has_at = true;
      } else if (key == "deadline") {
        line.deadline = std::stod(value);
        line.has_deadline = true;
      } else if (key == "tree") {
        // Consume to end of line: the notation itself contains spaces.
        std::string rest;
        std::getline(in, rest);
        line.tree = value + rest;
        line.has_tree = true;
      } else {
        line.error = "unknown key '" + key + "'";
        return line;
      }
    } catch (const std::exception&) {
      line.error = "bad value for '" + key + "': '" + value + "'";
      return line;
    }
  }
  return line;
}

class Emitter {
 public:
  explicit Emitter(std::ostream& out) : out_(out) {}

  void decision(std::uint64_t id, double at,
                const core::AdmissionOutcome& outcome) {
    metrics::JsonWriter w(out_);
    w.begin_object()
        .kv("schema", "sda.admit.v1")
        .kv("id", id)
        .kv("at", at)
        .kv("decision", core::to_string(outcome.decision))
        .kv("state", core::to_string(outcome.state))
        .kv("reason", outcome.reason)
        .kv("pressure", outcome.pressure)
        .kv("deadline", outcome.deadline)
        .kv("cache_hit", outcome.cache_hit);
    if (!outcome.plan.empty()) {
      w.key("leaves").begin_array();
      for (const core::LeafAssignment& a : outcome.plan) {
        w.begin_object()
            .kv("node", a.leaf->exec_node)
            .kv("dispatch", a.planned_dispatch)
            .kv("deadline", a.virtual_deadline)
            .end_object();
      }
      w.end_array();
    }
    w.end_object();
    out_ << "\n";
  }

  void error(std::uint64_t id, bool has_id, double at,
             const std::string& reason) {
    metrics::JsonWriter w(out_);
    w.begin_object().kv("schema", "sda.admit.v1");
    if (has_id) w.kv("id", id);
    w.kv("at", at)
        .kv("decision", "error")
        .kv("reason", reason)
        .end_object();
    out_ << "\n";
  }

 private:
  std::ostream& out_;
};

}  // namespace

ServeResult serve_stream(std::istream& in, std::ostream& out,
                         const ServeOptions& options) {
  using Clock = std::chrono::steady_clock;

  core::AdmissionController controller(options.admission);
  Emitter emit(out);
  ServeResult result;

  metrics::LogHistogram latency_ns(1.0, 1e9, 8);  // 1 ns .. 1 s
  double busy_seconds = 0.0;

  double now = 0.0;
  std::string text;
  auto emit_resolved =
      [&](const std::vector<std::pair<std::uint64_t, core::AdmissionOutcome>>&
              resolved) {
        for (const auto& [id, outcome] : resolved) {
          emit.decision(id, now, outcome);
          ++result.decisions;
        }
      };

  while (std::getline(in, text)) {
    if (text.empty() || text[0] == '#') continue;
    Line line = parse_line(text);
    if (!line.error.empty()) {
      ++result.errors;
      emit.error(line.id, line.has_id, now, line.error);
      continue;
    }
    if (line.has_at) {
      if (line.at < now) {
        ++result.errors;
        emit.error(line.id, line.has_id, now,
                   "time went backwards (stream clock is monotonic)");
        continue;
      }
      now = line.at;
    }

    if (line.verb == "done") {
      if (!line.has_id) {
        ++result.errors;
        emit.error(line.id, line.has_id, now, "done needs id=");
        continue;
      }
      controller.on_finished(line.id);
      emit_resolved(controller.pump(now));
      continue;
    }
    if (line.verb != "sub") {
      ++result.errors;
      emit.error(line.id, line.has_id, now,
                 "unknown verb '" + line.verb + "'");
      continue;
    }
    if (!line.has_id || !line.has_at || !line.has_deadline ||
        !line.has_tree) {
      ++result.errors;
      emit.error(line.id, line.has_id, now,
                 "sub needs id=, at=, deadline=, tree=");
      continue;
    }
    if (line.deadline <= 0.0) {
      ++result.errors;
      emit.error(line.id, line.has_id, now, "deadline must be positive");
      continue;
    }
    ++result.submissions;

    task::TreePtr tree;
    try {
      tree = task::parse_notation(line.tree);
    } catch (const std::exception& e) {
      ++result.errors;
      emit.error(line.id, true, now, e.what());
      continue;
    }
    const std::string invalid = task::validate(*tree);
    if (!invalid.empty()) {
      ++result.errors;
      emit.error(line.id, true, now, invalid);
      continue;
    }

    // Earlier-parked submissions get first claim on freed capacity.
    emit_resolved(controller.pump(now));

    const Clock::time_point t0 =
        options.measure_latency ? Clock::now() : Clock::time_point{};
    core::AdmissionController::SubmitResult sr = controller.submit(
        std::move(tree), now, now + line.deadline, line.id);
    if (options.measure_latency) {
      const auto dt = Clock::now() - t0;
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
      latency_ns.add(ns);
      busy_seconds += ns * 1e-9;
    }
    if (!sr.queued) {
      emit.decision(line.id, now, sr.outcome);
      ++result.decisions;
    }
  }

  // End of stream: resolve everything still parked, then summarize.
  emit_resolved(controller.flush(now));

  result.stats = controller.stats();
  result.cache = controller.cache_stats();

  metrics::JsonWriter w(out);
  w.begin_object()
      .kv("schema", "sda.serve.summary.v1")
      .kv("submissions", result.submissions)
      .kv("decisions", result.decisions)
      .kv("errors", result.errors)
      .kv("admitted", result.stats.admitted)
      .kv("admitted_degraded", result.stats.admitted_degraded)
      .kv("rejected", result.stats.rejected)
      .kv("shed", result.stats.shed)
      .kv("backpressure", result.stats.backpressure)
      .kv("queued", result.stats.queued)
      .kv("queue_high_water",
          static_cast<std::uint64_t>(result.stats.queue_high_water))
      .kv("final_state", core::to_string(controller.state()))
      .kv("final_pressure", controller.pressure());
  w.key("transitions")
      .begin_object()
      .kv("to_degraded", result.stats.to_degraded)
      .kv("to_shedding", result.stats.to_shedding)
      .kv("to_normal", result.stats.to_normal)
      .end_object();
  w.key("plan_cache")
      .begin_object()
      .kv("hits", result.cache.hits)
      .kv("misses", result.cache.misses)
      .kv("evictions", result.cache.evictions)
      .end_object();
  if (options.measure_latency) {
    const metrics::Quantiles q = metrics::summarize(latency_ns);
    w.key("assign_latency_ns")
        .begin_object()
        .kv("count", static_cast<std::uint64_t>(q.count))
        .kv("mean", q.mean)
        .kv("p50", q.p50)
        .kv("p90", q.p90)
        .kv("p99", q.p99)
        .kv("p999", q.p999)
        .end_object();
    w.kv("admissions_per_sec",
         busy_seconds > 0.0
             ? static_cast<double>(result.stats.admitted +
                                   result.stats.admitted_degraded) /
                   busy_seconds
             : 0.0);
  }
  w.end_object();
  out << "\n";
  return result;
}

}  // namespace sda::exp
