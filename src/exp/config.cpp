#include "src/exp/config.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/core/admission.hpp"

namespace sda::exp {

std::pair<double, double> ExperimentConfig::resolved_global_slack() const {
  if (global_slack_min >= 0.0 && global_slack_max >= 0.0) {
    return {global_slack_min, global_slack_max};
  }
  if (global_kind == GlobalKind::kGraph) {
    const double stages = static_cast<double>(stage_widths.size());
    return {slack_min * stages, slack_max * stages};
  }
  return {slack_min, slack_max};
}

double ExperimentConfig::expected_global_work() const {
  if (global_kind == GlobalKind::kGraph) {
    int subtasks = 0;
    for (int w : stage_widths) subtasks += w;
    return static_cast<double>(subtasks) / mu_subtask;
  }
  // Spread model: E[s^U[-1,1]] = (s - 1/s) / (2 ln s) for s > 1.
  double spread_mean = 1.0;
  if (subtask_exec_spread > 1.0) {
    const double s = subtask_exec_spread;
    spread_mean = (s - 1.0 / s) / (2.0 * std::log(s));
  }
  return 0.5 * static_cast<double>(n_min + n_max) * spread_mean / mu_subtask;
}

core::AdmissionConfig ExperimentConfig::admission_config() const {
  core::AdmissionConfig a;
  a.node_count = k;
  a.psp = psp;
  a.ssp = ssp;
  a.test_utilization = false;
  a.test_completion_time = false;
  a.test_scheduling_point = false;
  std::stringstream tokens(admission_tests);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    if (token == "util") {
      a.test_utilization = true;
    } else if (token == "ct") {
      a.test_completion_time = true;
    } else if (token == "sp") {
      a.test_scheduling_point = true;
    } else if (!token.empty()) {
      throw std::invalid_argument(
          "admission_tests: unknown test '" + token +
          "' (expected csv of util, ct, sp)");
    }
  }
  a.util_bound = admission_util_bound;
  a.enter_degraded = admission_enter_degraded;
  a.exit_degraded = admission_exit_degraded;
  a.enter_shedding = admission_enter_shedding;
  a.exit_shedding = admission_exit_shedding;
  a.pressure_alpha = admission_pressure_alpha;
  a.degrade_stretch = admission_degrade_stretch;
  a.shed_headroom = admission_shed_headroom;
  a.plan_cache = admission_plan_cache;
  a.plan_cache_capacity =
      static_cast<std::size_t>(admission_plan_cache_capacity < 0
                                   ? 0
                                   : admission_plan_cache_capacity);
  return a;
}

std::string ExperimentConfig::describe() const {
  std::ostringstream os;
  os << "k=" << k << " " << scheduler_policy
     << (preemptive ? " (preemptive)" : "") << ", psp=" << psp
     << ", ssp=" << ssp << ", load=" << load << ", frac_local=" << frac_local;
  if (global_kind == GlobalKind::kParallel) {
    os << ", n=[" << n_min << ".." << n_max << "]";
  } else {
    os << ", stages={";
    for (std::size_t i = 0; i < stage_widths.size(); ++i) {
      os << (i ? "," : "") << stage_widths[i];
    }
    os << "}";
  }
  switch (pm_abort) {
    case core::PmAbortMode::kNone: break;
    case core::PmAbortMode::kRealDeadline: os << ", pm-abort"; break;
  }
  if (local_abort != sched::LocalAbortPolicy::kNone) os << ", local-abort";
  if (admission) {
    os << ", admission[" << admission_tests << "]";
    if (global_burst_factor > 1.0) os << " burst=" << global_burst_factor;
  }
  if (faults_enabled()) {
    os << ", faults[";
    bool first = true;
    auto sep = [&] { os << (first ? "" : " "); first = false; };
    if (fault_rate > 0.0) { sep(); os << "rate=" << fault_rate; }
    if (crash_mean_uptime > 0.0) {
      sep();
      os << "crash=" << crash_mean_uptime << "/" << crash_mean_downtime;
    }
    if (msg_loss_rate > 0.0) { sep(); os << "loss=" << msg_loss_rate; }
    if (msg_extra_delay_mean > 0.0) {
      sep();
      os << "jitter=" << msg_extra_delay_mean;
    }
    os << "] retry=" << retry_deadline;
  }
  return os.str();
}

ExperimentConfig baseline_config() { return ExperimentConfig{}; }

ExperimentConfig graph_config() {
  ExperimentConfig c;
  c.global_kind = GlobalKind::kGraph;
  c.stage_widths = {1, 4, 1, 4, 1};
  // global_slack_* stay negative: the derivation rule yields [6.25, 25].
  return c;
}

}  // namespace sda::exp
