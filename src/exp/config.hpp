// Experiment configuration — the programmatic form of the paper's Table 1.
//
// One ExperimentConfig fully describes a simulated system (nodes, scheduler
// policy, abortion regime), a deadline-assignment strategy pair (PSP x SSP),
// and a workload (load, frac_local, slack, global-task shape).  The
// baseline_config() values are exactly Table 1; experiments vary one or two
// fields from there.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/process_manager.hpp"
#include "src/sched/abort_policy.hpp"
#include "src/workload/pex_model.hpp"

namespace sda::core {
struct AdmissionConfig;
}  // namespace sda::core

namespace sda::exp {

/// Shape of the global-task population.
enum class GlobalKind {
  kParallel,  ///< flat [T1 || ... || Tn] tasks (Sections 4-7)
  kGraph,     ///< serial-parallel stage graphs (Section 8, Figure 14)
};

struct ExperimentConfig {
  // --- system -------------------------------------------------------------
  int k = 6;                            ///< number of nodes
  std::string scheduler_policy = "edf"; ///< "edf" | "fifo" | "spt" | "llf"
  sched::LocalAbortPolicy local_abort = sched::LocalAbortPolicy::kNone;
  bool preemptive = false;              ///< preemptive-resume service (ablation)
  /// Per-node speed factors (heterogeneous components, a §3.2
  /// generalization).  Empty = homogeneous (all 1.0).  Must have k entries
  /// otherwise; keep the mean at 1.0 for the `load` definition to stay
  /// comparable with the homogeneous system.
  std::vector<double> node_speeds;

  // --- deadline assignment -------------------------------------------------
  std::string psp = "ud";  ///< "ud" | "div-<x>" | "gf"
  std::string ssp = "ud";  ///< "ud" | "ed" | "eqs" | "eqf"
  core::PmAbortMode pm_abort = core::PmAbortMode::kNone;
  bool subtasks_non_abortable = false;  ///< §7.3 "special directives"

  // --- workload -------------------------------------------------------------
  double load = 0.5;
  double frac_local = 0.75;
  double mu_local = 1.0;    ///< local service rate (mean ex = 1/mu_local = 1)
  double mu_subtask = 1.0;  ///< subtask service rate

  /// Local-arrival burstiness (interrupted Poisson; 1 = the paper's pure
  /// Poisson).  Mean offered load is unchanged — only its variability.
  double local_burst_factor = 1.0;
  double local_burst_cycle = 50.0;

  /// Service-time distribution for locals and subtasks: "exponential" (the
  /// paper, CV = 1), "deterministic" (CV = 0), "uniform" (over [0, 2*mean],
  /// CV ~ 0.58), or "hyperexp" (CV = service_cv > 1).  Means stay 1/mu.
  std::string service_dist = "exponential";
  double service_cv = 4.0;  ///< hyperexp only
  double slack_min = 1.25;  ///< local-task slack range [S_min, S_max]
  double slack_max = 5.0;

  GlobalKind global_kind = GlobalKind::kParallel;
  int n_min = 4;  ///< parallel kind: subtasks per global task
  int n_max = 4;
  std::vector<int> stage_widths = {1, 4, 1, 4, 1};  ///< graph kind (Fig. 14)

  /// Communication modeling for kGraph workloads (§3.2's "links are
  /// resources too"): link_count extra nodes indexed [k, k+link_count) are
  /// created, and a message subtask (mean mean_msg_time) is inserted
  /// between consecutive stages on a uniformly chosen link.  Local tasks
  /// never run on links, and message work is excluded from the compute
  /// `load` definition.
  int link_count = 0;
  double mean_msg_time = 0.25;

  /// Global-task slack range; negative values mean "derive from the local
  /// range": equal to it for kParallel, scaled by the stage count for
  /// kGraph (the §8 experiment's [6.25, 25] = 5 x [1.25, 5]).
  double global_slack_min = -1.0;
  double global_slack_max = -1.0;

  workload::PexModel pex = workload::PexModel::exact();

  /// §7.4 extension: per-subtask exponential mean spread factor (>= 1;
  /// 1 = the paper's homogeneous subtasks).  kParallel workloads only.
  double subtask_exec_spread = 1.0;

  /// Placement of parallel subtasks: "uniform" (the paper's model) or
  /// "least-queued" (extension ablation).  kParallel workloads only.
  std::string placement = "uniform";

  /// Collect per-class tardiness histograms (P50/P90/P99 in RunResult's
  /// collector); small extra cost, off by default.
  bool tardiness_histograms = false;

  /// Collect log-bucketed response-time/tardiness distributions per task
  /// class *and per node* (P50/P90/P99/P99.9, mergeable across
  /// replications — see metrics::DistributionSet).  Off by default; the
  /// collection never touches the event stream or RNG, so determinism
  /// fingerprints are identical either way.
  bool distributions = false;

  // --- fault injection (robustness extension; all off by default) ----------
  /// Per-service-attempt probability that a subtask attempt fails partway
  /// through (work done on the attempt is lost).  Compute nodes only.
  double fault_rate = 0.0;
  /// Node crash/repair process: each compute node alternates exponential
  /// up intervals (mean crash_mean_uptime) and down intervals (mean
  /// crash_mean_downtime).  0 uptime disables crashes.
  double crash_mean_uptime = 0.0;
  double crash_mean_downtime = 0.0;
  /// Whether a crash drops the node's whole ready queue (true) or merely
  /// freezes it until recovery (false).
  bool crash_discards_queue = true;
  /// Link-node faults (kGraph + link_count > 0 workloads): per-transmission
  /// loss probability and mean of an exponential extra delay.
  double msg_loss_rate = 0.0;
  double msg_extra_delay_mean = 0.0;

  // --- recovery policy -----------------------------------------------------
  /// Retries a global run may consume before it is shed; <0 = library
  /// default (core::RecoveryPolicy).
  int max_retries_per_run = -1;
  /// Exponential backoff before a retry: delay = base * factor^(attempt-1).
  /// base 0 retries immediately.
  double retry_backoff_base = 0.0;
  double retry_backoff_factor = 2.0;
  /// Resubmit to an alternate same-pool node when the original is down.
  bool retry_failover = true;
  /// Virtual deadline carried by a retried subtask: "sda" re-runs the
  /// SSP/PSP assignment over the unfinished remainder with the slack left
  /// at retry time; "stale" reuses the original assignment.
  std::string retry_deadline = "sda";
  /// Shed a run outright when its remaining critical path cannot meet the
  /// real deadline even with zero queueing.
  bool shed_negative_slack = true;

  // --- online admission control (overload robustness extension) -----------
  /// Gate every global arrival through core::AdmissionController: per-node
  /// feasibility tests over the ledger of admitted work, plus the
  /// normal/degraded/shedding overload state machine.  Off by default; the
  /// gate draws no RNG, so turning it off reproduces the ungated system
  /// bit for bit.  With admission on, `load` >= 1 becomes a legal
  /// (deliberate-overload) configuration.
  bool admission = false;
  /// Feasibility battery, csv of "util" (density bound), "ct"
  /// (completion-time walk), "sp" (scheduling-point criterion).
  std::string admission_tests = "util,ct";
  double admission_util_bound = 1.0;
  /// Hysteresis thresholds on smoothed pressure (worst per-node ledger
  /// density / util bound): enter/exit the degraded and shedding states.
  double admission_enter_degraded = 0.70;
  double admission_exit_degraded = 0.55;
  double admission_enter_shedding = 0.90;
  double admission_exit_shedding = 0.70;
  double admission_pressure_alpha = 0.3;
  /// Degraded state: a submission infeasible at its own deadline is
  /// retried with deadline stretched by this factor.
  double admission_degrade_stretch = 1.5;
  /// Shedding state: admit only candidates that keep the worst node below
  /// util_bound * (1 - headroom).
  double admission_shed_headroom = 0.15;
  /// SDA plan cache (normalized-time plans; bit-identical on/off).
  bool admission_plan_cache = true;
  int admission_plan_cache_capacity = 512;

  /// Global-arrival burstiness (interrupted Poisson, like the local
  /// knobs): 1 = the paper's pure Poisson, unchanged mean load.  The
  /// overload tests drive the admission state machine with this.
  double global_burst_factor = 1.0;
  double global_burst_cycle = 50.0;

  /// True when any fault knob is active (decides whether the runner builds
  /// a fault plan — and splits the fault RNG stream — at all).
  bool faults_enabled() const noexcept {
    return fault_rate > 0.0 || crash_mean_uptime > 0.0 ||
           msg_loss_rate > 0.0 || msg_extra_delay_mean > 0.0;
  }

  // --- parallel execution (conservative time-window PDES) ------------------
  /// Worker shards one replication is partitioned across (node i -> shard
  /// i mod shards; the process manager, global source and admission gate
  /// run on shard 0's extra control lane).  1 = the serial engine,
  /// byte-for-byte.  Requires 1 <= shards <= k + link_count.  Run
  /// fingerprints are bit-identical at any shard count; see DESIGN.md §4c.
  int shards = 1;
  /// Modeled control-plane message latency between the process manager
  /// and the nodes (dispatch, completion/abort/failure notifications) —
  /// also the PDES lookahead bound.  0 keeps the paper's instantaneous
  /// control plane: with shards=1 that is the serial path, with shards>1
  /// the window degrades to per-timestamp rounds (slower, never wrong).
  /// Any value > 0 changes the *model* (notifications arrive late), so
  /// compare fingerprints only across equal net_latency.
  double net_latency = 0.0;
  /// Timer-queue backend for every simulation engine (serial and per-shard):
  /// "heap" (pooled 4-ary heap, the default), "wheel" (hierarchical timing
  /// wheel), or any name registered via sim::register_timer_queue.  Backends
  /// share pop order and event-id allocation, so run fingerprints are
  /// bit-identical across them; this key trades only constant factors.
  std::string timer_queue = "heap";

  // --- run control ----------------------------------------------------------
  double sim_time = 200000.0;   ///< simulated time units per replication
  double warmup_fraction = 0.05;
  int replications = 2;
  std::uint64_t seed = 20250707;

  /// Resolved global slack range (applies the derivation rule above).
  std::pair<double, double> resolved_global_slack() const;

  /// The admission-controller config implied by the admission_* fields
  /// (node_count = k, strategies = psp/ssp).  Throws std::invalid_argument
  /// on an unknown admission_tests token.
  core::AdmissionConfig admission_config() const;

  /// Expected total execution demand of one global task (for the load
  /// equations): E[n]/mu_subtask for kParallel, sum(widths)/mu_subtask for
  /// kGraph.
  double expected_global_work() const;

  /// One-line description for bench output.
  std::string describe() const;

  // --- key=value API (the sda_run front door; see config_kv.cpp) ----------
  /// Sets one field by key, parsing @p value from text ("psp", "gf"),
  /// ("node_speeds", "1,2,0.5"), ("global_kind", "graph"), ...  Throws
  /// std::invalid_argument on an unknown key — with a "did you mean"
  /// suggestion when the key looks like a typo — or an unparsable value.
  void set(const std::string& key, const std::string& value);

  /// Current value of one field, in the same textual form set() accepts.
  /// Throws std::invalid_argument on unknown keys.
  std::string get(const std::string& key) const;

  /// Every field as (key, value) pairs in declaration order; feeding the
  /// pairs back through set() reproduces the config exactly (the kv
  /// round-trip test relies on this).
  std::vector<std::pair<std::string, std::string>> to_kv() const;

  /// All keys set()/get() understand, in declaration order.
  static std::vector<std::string> known_keys();

  /// All problems with this config (empty = valid): inconsistent shapes
  /// (node_speeds vs k, n_min > n_max, slack_min > slack_max), negative
  /// rates, unknown scheduler_policy/placement/service_dist/strategy
  /// names, ...  Same checks as exp::validate().
  std::vector<std::string> validate() const;

  /// Throws std::invalid_argument listing every problem when invalid.
  /// Called by run_once before any part of the system is assembled.
  void validate_or_throw() const;
};

/// Table 1: k=6, n=4, EDF, no abortion, load 0.5, frac_local 0.75,
/// slack U[1.25, 5], mu_local = mu_subtask = 1, strategies UD/UD.
ExperimentConfig baseline_config();

/// Section 8's serial-parallel configuration: baseline system with the
/// Figure 14 {1,4,1,4,1} graph workload and slack U[6.25, 25].
ExperimentConfig graph_config();

}  // namespace sda::exp
