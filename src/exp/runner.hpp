// Assembles a whole simulated system from an ExperimentConfig and runs it.
//
// run_once builds engine + k nodes + process manager + workload sources,
// wires the completion/abort plumbing, runs to the configured horizon, and
// returns the replication's Collector plus diagnostics.  run_experiment
// repeats with independent seeds and aggregates into a metrics::Report —
// one (strategy, parameter) data point of a paper figure.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/admission.hpp"
#include "src/exp/config.hpp"
#include "src/metrics/collector.hpp"
#include "src/metrics/report.hpp"
#include "src/metrics/trace.hpp"
#include "src/sched/node.hpp"
#include "src/util/thread_pool.hpp"

namespace sda::exp {

/// Outcome of a single replication.
struct RunResult {
  metrics::Collector collector;

  // Diagnostics for sanity checks and tests.
  double mean_utilization = 0.0;  ///< average *compute*-node utilization (~= load)
  double mean_link_utilization = 0.0;  ///< link nodes only; 0 without links
  std::vector<double> node_utilizations;  ///< per node (compute then links)
  std::uint64_t events_fired = 0;
  std::uint64_t locals_generated = 0;
  std::uint64_t globals_generated = 0;
  std::uint64_t globals_completed = 0;
  std::uint64_t globals_aborted = 0;
  std::uint64_t local_scheduler_aborts = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t preemptions = 0;

  // Fault/recovery diagnostics (all zero when faults are disabled).
  std::uint64_t node_crashes = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t globals_shed = 0;  ///< subset of globals_aborted

  /// Per-node perf counters (compute nodes then links), snapshotted at the
  /// horizon.  Always populated — the counters are passive O(1) increments
  /// with no event-stream or RNG footprint.
  std::vector<sched::Node::PerfCounters> node_counters;

  // Admission diagnostics (defaults / zero when the gate is off).
  bool admission_enabled = false;
  std::uint64_t globals_not_admitted = 0;  ///< drawn but rejected/shed
  core::AdmissionStats admission;
  core::PlanCache::Stats plan_cache;
  core::OverloadState admission_final_state = core::OverloadState::kNormal;
};

/// Runs one replication with the given seed.  When @p tracer is non-null,
/// every task/global lifecycle event is recorded into it (the tracer's
/// fingerprint doubles as a determinism checksum of the whole run).
RunResult run_once(const ExperimentConfig& config, std::uint64_t seed,
                   metrics::Tracer* tracer = nullptr);

/// The seed used for replication @p rep of an experiment: widely separated,
/// deterministic offsets from the experiment's base seed.  Exposed so the
/// sweep executor can schedule (point x replication) cells itself while
/// reproducing run_experiment's seed schedule exactly.
constexpr std::uint64_t replication_seed(std::uint64_t base_seed,
                                         int rep) noexcept {
  return base_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(rep + 1);
}

/// Runs config.replications independent replications (seeds derived from
/// config.seed via replication_seed) and aggregates per-class miss rates
/// into a Report.  Replications run on the shared work-stealing pool
/// (sized by SDA_THREADS / hardware_concurrency); results are folded in
/// replication order, so the Report is bit-identical to a sequential run.
metrics::Report run_experiment(const ExperimentConfig& config);

/// Same, on an explicit pool; when @p fingerprints is non-null it receives
/// one tracer fingerprint per replication, in replication order — the
/// determinism tests assert these are identical across pool sizes.
metrics::Report run_experiment(const ExperimentConfig& config,
                               util::ThreadPool& pool,
                               std::vector<std::uint64_t>* fingerprints = nullptr);

}  // namespace sda::exp
