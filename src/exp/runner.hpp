// Assembles a whole simulated system from an ExperimentConfig and runs it.
//
// run_once builds engine + k nodes + process manager + workload sources,
// wires the completion/abort plumbing, runs to the configured horizon, and
// returns the replication's Collector plus diagnostics.  run_experiment
// repeats with independent seeds and aggregates into a metrics::Report —
// one (strategy, parameter) data point of a paper figure.
#pragma once

#include <cstdint>
#include <vector>

#include "src/exp/config.hpp"
#include "src/metrics/collector.hpp"
#include "src/metrics/report.hpp"
#include "src/metrics/trace.hpp"

namespace sda::exp {

/// Outcome of a single replication.
struct RunResult {
  metrics::Collector collector;

  // Diagnostics for sanity checks and tests.
  double mean_utilization = 0.0;  ///< average *compute*-node utilization (~= load)
  double mean_link_utilization = 0.0;  ///< link nodes only; 0 without links
  std::vector<double> node_utilizations;  ///< per node (compute then links)
  std::uint64_t events_fired = 0;
  std::uint64_t locals_generated = 0;
  std::uint64_t globals_generated = 0;
  std::uint64_t globals_completed = 0;
  std::uint64_t globals_aborted = 0;
  std::uint64_t local_scheduler_aborts = 0;
  std::uint64_t resubmissions = 0;
  std::uint64_t preemptions = 0;

  // Fault/recovery diagnostics (all zero when faults are disabled).
  std::uint64_t node_crashes = 0;
  std::uint64_t transient_failures = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t globals_shed = 0;  ///< subset of globals_aborted
};

/// Runs one replication with the given seed.  When @p tracer is non-null,
/// every task/global lifecycle event is recorded into it (the tracer's
/// fingerprint doubles as a determinism checksum of the whole run).
RunResult run_once(const ExperimentConfig& config, std::uint64_t seed,
                   metrics::Tracer* tracer = nullptr);

/// Runs config.replications independent replications (seeds derived from
/// config.seed) and aggregates per-class miss rates into a Report.
/// Replications run on parallel threads (one each — keep the count modest);
/// the result is bit-identical to a sequential run.
metrics::Report run_experiment(const ExperimentConfig& config);

}  // namespace sda::exp
