// Paper-vs-measured shape checking.
//
// EXPERIMENTS.md's contract is qualitative: orderings, crossovers, and
// monotonicities from the paper must hold, and the in-text §6.1/§7.3
// anchor numbers must land within a few points.  This module encodes every
// such claim as an executable check and runs them as one battery — the
// bench/reproduce_all binary prints the resulting scorecard, and the test
// suite runs a shortened battery as a regression gate.
#pragma once

#include <string>
#include <vector>

#include "src/util/env.hpp"

namespace sda::exp::compare {

struct Check {
  std::string id;      ///< e.g. "fig7.gf-beats-div1"
  std::string claim;   ///< the paper's statement being verified
  bool pass = false;
  std::string detail;  ///< measured numbers backing the verdict
};

class Scorecard {
 public:
  /// Records a raw verdict.
  void add(std::string id, std::string claim, bool pass,
           std::string detail = {});

  /// measured within +-tolerance of expected.
  void check_near(std::string id, std::string claim, double measured,
                  double expected, double tolerance);

  /// a < b (+ margin slack, i.e. pass when a < b + margin).
  void check_less(std::string id, std::string claim, double a, double b,
                  double margin = 0.0);

  const std::vector<Check>& checks() const noexcept { return checks_; }
  std::size_t failures() const noexcept;
  bool all_passed() const noexcept { return failures() == 0; }

  /// Aligned text table: id, PASS/FAIL, claim, detail.
  std::string render() const;

 private:
  std::vector<Check> checks_;
};

/// Runs the full qualitative battery (every figure's orderings plus the
/// in-text anchors) at the given run length.  Longer runs tighten the
/// numeric anchors; the battery's tolerances assume sim_time >= ~50k.
Scorecard run_reproduction_battery(const util::BenchEnv& env);

}  // namespace sda::exp::compare
