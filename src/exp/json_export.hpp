// Versioned JSON-lines export of run results.
//
// Two record schemas, one JSON object per line (documented in
// EXPERIMENTS.md, validated by tests/test_exporters.cpp and the CI smoke
// run):
//
//   * "sda.run.v1"    — one line per replication: seed, determinism
//     fingerprint (hex string, so no reader loses uint64 precision),
//     diagnostics, per-class counts/timings, per-node perf counters, and —
//     when config.distributions is on — per-class/per-node quantiles.
//   * "sda.report.v1" — one line per experiment: the full config as
//     key=value pairs (round-trips through ExperimentConfig::set), CI-based
//     per-class summaries, per-replication fingerprints, and optionally the
//     distributions merged across replications.
//
// Exporters read finished results only; they cannot perturb a run.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/report.hpp"

namespace sda::exp {

/// Writes one "sda.run.v1" line (newline-terminated) for replication
/// @p rep of @p config, run with @p seed and observed @p fingerprint.
void write_run_json_line(const ExperimentConfig& config, int rep,
                         std::uint64_t seed, std::uint64_t fingerprint,
                         const RunResult& result, std::ostream& os);

/// Writes one "sda.report.v1" line (newline-terminated).  @p fingerprints
/// holds one per-replication fingerprint in replication order (may be
/// empty).  @p merged_distributions, when non-null, must be a Collector
/// with distributions enabled holding the replication-merged histograms.
void write_report_json_line(
    const ExperimentConfig& config, const metrics::Report& report,
    const std::vector<std::uint64_t>& fingerprints,
    const metrics::Collector* merged_distributions, std::ostream& os);

}  // namespace sda::exp
