#include "src/exp/protocol.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace sda::exp {

namespace {

bool is_sep(char c) noexcept { return c == ' ' || c == '\t'; }

/// from_chars wrapper: the whole value must be consumed (no trailing
/// junk, no leading whitespace — stricter than the old stoull/stod
/// path, which silently ignored trailing garbage).
template <typename T>
bool parse_number(std::string_view value, T* out) {
  if (value.empty()) return false;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const std::from_chars_result r = std::from_chars(first, last, *out);
  return r.ec == std::errc() && r.ptr == last;
}

ParsedLine fail(ParsedLine line, ProtocolErrorCode code, std::string message) {
  line.code = code;
  line.error = std::move(message);
  return line;
}

}  // namespace

const char* to_string(ProtocolErrorCode code) noexcept {
  switch (code) {
    case ProtocolErrorCode::kNone: return "none";
    case ProtocolErrorCode::kParse: return "parse";
    case ProtocolErrorCode::kLimit: return "limit";
    case ProtocolErrorCode::kVerb: return "verb";
    case ProtocolErrorCode::kField: return "field";
    case ProtocolErrorCode::kClock: return "clock";
    case ProtocolErrorCode::kTree: return "tree";
    case ProtocolErrorCode::kUnknownId: return "unknown-id";
    case ProtocolErrorCode::kDuplicateId: return "duplicate-id";
    case ProtocolErrorCode::kIo: return "io";
  }
  return "?";
}

ParsedLine parse_serve_line(std::string_view text,
                            const ProtocolLimits& limits) {
  ParsedLine line;
  if (!text.empty() && text.back() == '\r') text.remove_suffix(1);
  if (text.empty() || text.front() == '#') {
    line.ignorable = true;
    return line;
  }
  if (text.size() > limits.max_line_bytes) {
    return fail(std::move(line), ProtocolErrorCode::kLimit,
                "line exceeds " + std::to_string(limits.max_line_bytes) +
                    " bytes");
  }
  if (text.find('\0') != std::string_view::npos) {
    return fail(std::move(line), ProtocolErrorCode::kParse,
                "embedded NUL byte");
  }

  std::size_t pos = 0;
  const auto skip_sep = [&] {
    while (pos < text.size() && is_sep(text[pos])) ++pos;
  };
  const auto next_token = [&]() -> std::string_view {
    const std::size_t start = pos;
    while (pos < text.size() && !is_sep(text[pos])) ++pos;
    return text.substr(start, pos - start);
  };

  skip_sep();
  line.verb = std::string(next_token());
  if (line.verb.empty()) {
    return fail(std::move(line), ProtocolErrorCode::kVerb,
                "unknown verb ''");
  }

  std::size_t fields = 0;
  bool saw_id = false, saw_at = false, saw_deadline = false, saw_leaf = false;
  for (skip_sep(); pos < text.size(); skip_sep()) {
    if (++fields > limits.max_fields) {
      return fail(std::move(line), ProtocolErrorCode::kLimit,
                  "more than " + std::to_string(limits.max_fields) +
                      " fields");
    }
    // Peek the key first: tree= swallows the rest of the line (the
    // notation's serial separator is a space), everything else is a
    // space-delimited token.
    const std::size_t token_start = pos;
    std::string_view token = next_token();
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail(std::move(line), ProtocolErrorCode::kParse,
                  "expected key=value, got '" + std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    if (key == "tree") {
      value = text.substr(token_start + eq + 1);
      pos = text.size();
      if (value.size() > limits.max_tree_bytes) {
        return fail(std::move(line), ProtocolErrorCode::kLimit,
                    "tree exceeds " + std::to_string(limits.max_tree_bytes) +
                        " bytes");
      }
      if (line.has_tree) {
        return fail(std::move(line), ProtocolErrorCode::kParse,
                    "duplicate key 'tree'");
      }
      line.tree = std::string(value);
      line.has_tree = true;
      continue;
    }
    if (value.size() > limits.max_value_bytes) {
      return fail(std::move(line), ProtocolErrorCode::kLimit,
                  "value for '" + std::string(key) + "' exceeds " +
                      std::to_string(limits.max_value_bytes) + " bytes");
    }
    const auto bad_value = [&] {
      return fail(std::move(line), ProtocolErrorCode::kParse,
                  "bad value for '" + std::string(key) + "': '" +
                      std::string(value) + "'");
    };
    if (key == "id") {
      if (saw_id) {
        return fail(std::move(line), ProtocolErrorCode::kParse,
                    "duplicate key 'id'");
      }
      saw_id = true;
      if (!parse_number(value, &line.id)) return bad_value();
      line.has_id = true;
    } else if (key == "at") {
      if (saw_at) {
        return fail(std::move(line), ProtocolErrorCode::kParse,
                    "duplicate key 'at'");
      }
      saw_at = true;
      // Non-finite times would poison the monotonic clock (NaN compares
      // false against everything) — reject at the parser.
      if (!parse_number(value, &line.at) || !std::isfinite(line.at)) {
        return bad_value();
      }
      line.has_at = true;
    } else if (key == "deadline") {
      if (saw_deadline) {
        return fail(std::move(line), ProtocolErrorCode::kParse,
                    "duplicate key 'deadline'");
      }
      saw_deadline = true;
      if (!parse_number(value, &line.deadline) ||
          !std::isfinite(line.deadline)) {
        return bad_value();
      }
      line.has_deadline = true;
    } else if (key == "leaf") {
      if (saw_leaf) {
        return fail(std::move(line), ProtocolErrorCode::kParse,
                    "duplicate key 'leaf'");
      }
      saw_leaf = true;
      if (!parse_number(value, &line.leaf)) return bad_value();
      line.has_leaf = true;
    } else {
      return fail(std::move(line), ProtocolErrorCode::kParse,
                  "unknown key '" + std::string(key) + "'");
    }
  }
  return line;
}

}  // namespace sda::exp
