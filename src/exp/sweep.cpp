#include "src/exp/sweep.hpp"

#include <stdexcept>

namespace sda::exp {

std::vector<SweepPoint> sweep(const ExperimentConfig& base,
                              const std::vector<double>& xs,
                              const ApplyFn& apply) {
  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (double x : xs) {
    ExperimentConfig c = base;
    apply(c, x);
    points.push_back(SweepPoint{x, run_experiment(c)});
  }
  return points;
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 1) throw std::invalid_argument("linspace: n must be >= 1");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  if (n == 1) {
    out.push_back(lo);
    return out;
  }
  for (int i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1));
  }
  return out;
}

}  // namespace sda::exp
