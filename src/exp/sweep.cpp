#include "src/exp/sweep.hpp"

#include <cstddef>
#include <stdexcept>
#include <utility>

#include "src/exp/validate.hpp"
#include "src/metrics/collector.hpp"

namespace sda::exp {

std::vector<SweepPoint> sweep(const ExperimentConfig& base,
                              const std::vector<double>& xs, ApplyFn apply) {
  return sweep(base, xs, apply, util::ThreadPool::shared());
}

std::vector<SweepPoint> sweep(const ExperimentConfig& base,
                              const std::vector<double>& xs, ApplyFn apply,
                              util::ThreadPool& pool) {
  // Materialize and validate every point's config up front (run_experiment
  // would have validated lazily; eager validation just fails sooner).
  std::vector<ExperimentConfig> configs;
  configs.reserve(xs.size());
  for (double x : xs) {
    ExperimentConfig c = base;
    apply(c, x);
    validate_or_throw(c);
    configs.push_back(std::move(c));
  }

  // Flatten the figure into independent (point, replication) cells so the
  // pool load-balances across the whole figure at once.
  struct Cell {
    std::size_t point;
    int rep;
  };
  std::vector<Cell> cells;
  std::vector<std::vector<metrics::Collector>> collectors(configs.size());
  for (std::size_t p = 0; p < configs.size(); ++p) {
    const int reps = configs[p].replications;
    collectors[p].resize(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) cells.push_back(Cell{p, rep});
  }
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    const Cell cell = cells[i];
    const ExperimentConfig& c = configs[cell.point];
    collectors[cell.point][static_cast<std::size_t>(cell.rep)] = std::move(
        run_once(c, replication_seed(c.seed, cell.rep)).collector);
  });

  // Deterministic fold: points in x order, replications in rep order —
  // exactly the sequential run_experiment schedule.
  std::vector<SweepPoint> points;
  points.reserve(configs.size());
  for (std::size_t p = 0; p < configs.size(); ++p) {
    metrics::Report report;
    for (const metrics::Collector& c : collectors[p]) {
      report.add_replication(c);
    }
    points.push_back(SweepPoint{xs[p], std::move(report)});
  }
  return points;
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 1) throw std::invalid_argument("linspace: n must be >= 1");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  if (n == 1) {
    out.push_back(lo);
    return out;
  }
  for (int i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1));
  }
  return out;
}

}  // namespace sda::exp
