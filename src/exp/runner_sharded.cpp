// Sharded replication assembly: one run on the conservative time-window
// fabric (src/sim/fabric.hpp, DESIGN.md §4c).
//
// The system is the same one runner.cpp builds — same components, same
// RNG split order, same handler topology — but laid out across lanes:
// node i (plus its local source and fault hooks) lives on lane i, and the
// process manager, admission gate, global source and metric sinks live on
// the control lane (shard 0).  Every cross-lane interaction goes through
// fabric messages:
//
//   PM -> node    dispatch / abort, via FabricNodePort (task snapshots —
//                 the PM and the node never share a SimpleTask object);
//   node -> PM    terminal subtask outcomes, as value snapshots replayed
//                 through ProcessManager::handle_remote;
//   any -> sinks  deferred SinkRecords, merged by shard 0 in global
//                 (time, origin-path) order — which is what makes the
//                 tracer fingerprint bit-identical at any shard count.
//
// The PM's only remaining read of node-side state, is_up() for failover,
// is answered from the fabric's NodeStatusBoard (the static crash plan)
// instead of the live node.
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/exp/runner_detail.hpp"

#include "src/core/strategy.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/injector.hpp"
#include "src/sched/node.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/fabric.hpp"
#include "src/util/rng.hpp"
#include "src/workload/global_source.hpp"
#include "src/workload/local_source.hpp"
#include "src/workload/rates.hpp"
#include "src/workload/taskgraph_source.hpp"

namespace sda::exp::detail {

namespace {

/// core::NodePort that ships every process-manager/node interaction as a
/// fabric message.  Tasks are cloned at the boundary: the node executes
/// its own copy, and the PM learns the outcome from a snapshot — no
/// object is ever touched by two shards.
///
/// The per-node registries map task id -> the node's clone so an abort
/// message can find the object the node actually holds.  Each registry is
/// touched only from its node's lane (registration happens inside the
/// delivered submit message, release inside the node's terminal handlers),
/// so there is no cross-shard access to guard.
class FabricNodePort final : public core::NodePort {
 public:
  FabricNodePort(sim::Fabric& fabric, std::vector<sched::Node*> nodes)
      : fabric_(fabric), nodes_(std::move(nodes)),
        registry_(nodes_.size()) {}

  int count() const override { return static_cast<int>(nodes_.size()); }

  /// Failover probe, called from the PM's shard: answered from the static
  /// crash calendar at the control clock instead of the live node.
  bool is_up(int node) const override {
    return fabric_.status_board().is_up(node, fabric_.control_engine().now());
  }

  void submit(int node, const task::TaskPtr& t) override {
    auto clone = std::make_shared<task::SimpleTask>(*t);
    fabric_.post(fabric_.control_lane(), node, [this, node, clone] {
      registry_[static_cast<std::size_t>(node)][clone->id] = clone;
      nodes_[static_cast<std::size_t>(node)]->submit(clone);
    });
  }

  void abort(int node, const task::SimpleTask& t) override {
    const std::uint64_t id = t.id;
    fabric_.post(fabric_.control_lane(), node, [this, node, id] {
      auto& reg = registry_[static_cast<std::size_t>(node)];
      auto it = reg.find(id);
      // Unknown id: the subtask reached a terminal state before the abort
      // arrived (legitimate under message latency) — nothing to do, which
      // is exactly DirectNodePort's "not here" no-op.
      if (it == reg.end()) return;
      const task::TaskPtr victim = it->second;
      reg.erase(it);
      nodes_[static_cast<std::size_t>(node)]->abort(*victim);
    });
  }

  /// Drops the registry entry for a task that reached a terminal state on
  /// its node.  Called from the node-lane terminal handlers.
  void release(int node, std::uint64_t id) {
    registry_[static_cast<std::size_t>(node)].erase(id);
  }

 private:
  sim::Fabric& fabric_;
  std::vector<sched::Node*> nodes_;
  std::vector<std::unordered_map<std::uint64_t, task::TaskPtr>> registry_;
};

}  // namespace

RunResult run_once_sharded(const ExperimentConfig& config, std::uint64_t seed,
                           metrics::Tracer* tracer) {
  const int link_count =
      config.global_kind == GlobalKind::kGraph ? config.link_count : 0;
  const int total_nodes = config.k + link_count;

  sim::Fabric::Options fo;
  fo.lanes = total_nodes;
  fo.shards = config.shards;
  fo.latency = config.net_latency;
  fo.timer_queue = config.timer_queue;
  sim::Fabric fabric(fo);
  const int control = fabric.control_lane();
  sim::Engine& control_engine = fabric.control_engine();

  util::Rng master(seed);

  // --- nodes (lane i -> node i's shard engine) -----------------------------
  std::vector<std::unique_ptr<sched::Node>> nodes;
  std::vector<sched::Node*> node_ptrs;
  nodes.reserve(static_cast<std::size_t>(total_nodes));
  for (int i = 0; i < total_nodes; ++i) {
    sched::Node::Config nc;
    nc.index = i;
    nc.abort_policy = config.local_abort;
    nc.preemptive = config.preemptive;
    if (!config.node_speeds.empty() && i < config.k) {
      nc.speed = config.node_speeds[static_cast<std::size_t>(i)];
    }
    nodes.push_back(std::make_unique<sched::Node>(
        fabric.engine_for_lane(i), sched::make_scheduler(config.scheduler_policy),
        nc));
    node_ptrs.push_back(nodes.back().get());
  }

  // --- process manager (control lane, message port) ------------------------
  FabricNodePort port(fabric, node_ptrs);
  core::ProcessManager::Config pmc;
  pmc.psp = core::make_psp_strategy(config.psp);
  pmc.ssp = core::make_ssp_strategy(config.ssp);
  pmc.abort_mode = config.pm_abort;
  pmc.mark_subtasks_non_abortable = config.subtasks_non_abortable;
  pmc.compute_node_count = config.k;
  if (config.max_retries_per_run >= 0) {
    pmc.recovery.max_retries_per_run = config.max_retries_per_run;
  }
  pmc.recovery.backoff_base = config.retry_backoff_base;
  pmc.recovery.backoff_factor = config.retry_backoff_factor;
  pmc.recovery.failover = config.retry_failover;
  pmc.recovery.deadline_mode = config.retry_deadline == "stale"
                                   ? core::RetryDeadline::kStale
                                   : core::RetryDeadline::kSdaRecompute;
  pmc.recovery.shed_negative_slack = config.shed_negative_slack;
  core::ProcessManager pm(control_engine, port, std::move(pmc));

  // --- admission gate (control lane; draws no RNG) -------------------------
  std::unique_ptr<core::AdmissionController> admission;
  if (config.admission) {
    admission =
        std::make_unique<core::AdmissionController>(config.admission_config());
  }
  core::AdmissionController* admission_ptr = admission.get();

  // --- metrics: sinks live behind the fabric's deterministic replay --------
  metrics::Collector collector;
  collector.set_warmup(config.warmup_fraction * config.sim_time);
  if (config.tardiness_histograms) collector.enable_tardiness_histograms();
  if (config.distributions) collector.enable_distributions();
  fabric.set_sinks(&collector, tracer);

  pm.set_global_handler([&fabric, admission_ptr, control,
                         tracer](const core::GlobalTaskRecord& rec) {
    if (admission_ptr != nullptr) admission_ptr->on_finished(rec.run_id);
    fabric.emit_global(control, rec);
    if (tracer != nullptr) {
      const metrics::TraceEvent ev =
          rec.shed ? metrics::TraceEvent::kGlobalShed
                   : (rec.aborted ? metrics::TraceEvent::kGlobalAborted
                                  : metrics::TraceEvent::kGlobalCompleted);
      fabric.emit_trace(control,
                        metrics::TraceRecord{rec.finished_at, ev, 0, rec.run_id,
                                             -1, rec.real_deadline});
    }
  });
  pm.set_subtask_handler([&fabric, control](const task::SimpleTask& t) {
    fabric.emit_simple(control, t);
  });
  if (tracer != nullptr) {
    pm.set_submit_observer(
        [&fabric, &control_engine, control](std::uint64_t run_id,
                                            sim::Time deadline) {
          fabric.emit_trace(
              control,
              metrics::TraceRecord{control_engine.now(),
                                   metrics::TraceEvent::kGlobalSubmitted, 0,
                                   run_id, -1, deadline});
        });
    for (auto& node : nodes) {
      const int lane = node->index();
      sim::Engine* lane_engine = &fabric.engine_for_lane(lane);
      node->set_observer([&fabric, lane, lane_engine](
                             sched::Node::Event e, const task::SimpleTask& t) {
        fabric.emit_trace(lane,
                          metrics::TraceRecord{lane_engine->now(),
                                               to_trace_event(e), t.id,
                                               t.owner_run, lane,
                                               t.attrs.virtual_deadline});
      });
    }
  }

  // Terminal handlers run on the node's lane: locals record through the
  // fabric; subtasks release the port registry and ship a value snapshot
  // of the task to the PM (handle_remote replays it over the PM's copy).
  auto notify_pm = [&fabric, &port, &pm](int lane, const task::TaskPtr& t,
                                         core::RemoteSubtaskEvent ev) {
    port.release(lane, t->id);
    const task::SimpleTask snapshot = *t;
    fabric.post(lane, fabric.control_lane(), [&pm, snapshot, ev] {
      pm.handle_remote(snapshot, ev);
    });
  };
  for (auto& node : nodes) {
    const int lane = node->index();
    node->set_completion_handler([&fabric, lane, notify_pm](
                                     const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        fabric.emit_simple(lane, *t);
      } else {
        notify_pm(lane, t, core::RemoteSubtaskEvent::kCompleted);
      }
    });
    node->set_abort_handler([&fabric, lane, notify_pm](const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        fabric.emit_simple(lane, *t);  // a locally aborted local is a miss
      } else {
        notify_pm(lane, t, core::RemoteSubtaskEvent::kLocalAbort);
      }
    });
    node->set_failure_handler([&fabric, lane, notify_pm](
                                  const task::TaskPtr& t) {
      if (t->kind == task::TaskKind::kLocal) {
        fabric.emit_simple(lane, *t);  // a fault-killed local is a miss
      } else {
        notify_pm(lane, t, core::RemoteSubtaskEvent::kFailed);
      }
    });
  }

  // --- workload (identical split order to runner.cpp) ----------------------
  workload::RateParams rp;
  rp.k = config.k;
  rp.load = config.load;
  rp.frac_local = config.frac_local;
  rp.mu_local = config.mu_local;
  rp.expected_global_work = config.expected_global_work();
  const workload::Rates rates = workload::solve_rates(rp);

  std::vector<std::unique_ptr<workload::LocalSource>> local_sources;
  for (int i = 0; i < config.k; ++i) {
    workload::LocalSource::Config lc;
    lc.lambda = rates.lambda_local;
    lc.mean_exec = 1.0 / config.mu_local;
    lc.slack_min = config.slack_min;
    lc.slack_max = config.slack_max;
    lc.abort_at_real_deadline =
        config.pm_abort == core::PmAbortMode::kRealDeadline;
    lc.id_base = local_id_base(i);
    lc.burst_factor = config.local_burst_factor;
    lc.burst_cycle = config.local_burst_cycle;
    lc.exec = workload::make_exec_distribution(
        config.service_dist, 1.0 / config.mu_local, config.service_cv);
    local_sources.push_back(std::make_unique<workload::LocalSource>(
        fabric.engine_for_lane(i), *nodes[static_cast<std::size_t>(i)],
        collector, master.split(), lc));
    // PM-timer abort records must join the global (time, path) order, not
    // jump the fence into the control-lane collector.
    const int lane = i;
    local_sources.back()->set_record_hook(
        [&fabric, lane](const task::SimpleTask& t) {
          fabric.emit_simple(lane, t);
        });
    local_sources.back()->start();
  }

  const auto [gslack_min, gslack_max] = config.resolved_global_slack();
  std::unique_ptr<workload::ParallelGlobalSource> parallel_source;
  std::unique_ptr<workload::GraphGlobalSource> graph_source;
  if (config.global_kind == GlobalKind::kParallel) {
    workload::ParallelGlobalSource::Config gc;
    gc.lambda = rates.lambda_global;
    gc.k = config.k;
    gc.n_min = config.n_min;
    gc.n_max = config.n_max;
    gc.mean_subtask_exec = 1.0 / config.mu_subtask;
    gc.slack_min = gslack_min;
    gc.slack_max = gslack_max;
    gc.pex = config.pex;
    gc.exec_spread = config.subtask_exec_spread;
    gc.exec = workload::make_exec_distribution(
        config.service_dist, 1.0 / config.mu_subtask, config.service_cv);
    // "least-queued" (which reads live node state) is rejected by
    // validate() for shards > 1; "uniform" never dereferences the nodes.
    gc.placement = workload::make_placement(
        config.placement,
        std::vector<const sched::Node*>(node_ptrs.begin(), node_ptrs.end()));
    gc.burst_factor = config.global_burst_factor;
    gc.burst_cycle = config.global_burst_cycle;
    gc.admission = admission_ptr;
    parallel_source = std::make_unique<workload::ParallelGlobalSource>(
        control_engine, pm, master.split(), gc);
    parallel_source->start();
  } else {
    workload::GraphGlobalSource::Config gc;
    gc.lambda = rates.lambda_global;
    gc.k = config.k;
    gc.stage_widths = config.stage_widths;
    gc.mean_subtask_exec = 1.0 / config.mu_subtask;
    gc.slack_min = gslack_min;
    gc.slack_max = gslack_max;
    gc.pex = config.pex;
    for (int link = 0; link < link_count; ++link) {
      gc.link_nodes.push_back(config.k + link);
    }
    gc.mean_msg_time = config.mean_msg_time;
    gc.exec = workload::make_exec_distribution(
        config.service_dist, 1.0 / config.mu_subtask, config.service_cv);
    graph_source = std::make_unique<workload::GraphGlobalSource>(
        control_engine, pm, master.split(), gc);
    graph_source->start();
  }

  // --- fault injection ------------------------------------------------------
  std::unique_ptr<fault::FaultInjector> injector;
  if (config.faults_enabled()) {
    util::Rng fault_master = master.split();
    fault::FaultConfig fc;
    fc.subtask_failure_rate = config.fault_rate;
    fc.crash_mean_uptime = config.crash_mean_uptime;
    fc.crash_mean_downtime = config.crash_mean_downtime;
    fc.crash_discards_queue = config.crash_discards_queue;
    fc.msg_loss_rate = config.msg_loss_rate;
    fc.msg_extra_delay_mean = config.msg_extra_delay_mean;
    fault::FaultPlan plan = fault::FaultPlan::generate(
        fc, config.k, config.sim_time, fault_master.split());
    // The PM answers failover is_up() probes from the static crash
    // calendar — same information the plan gives the injector.
    fabric.status_board().reset(total_nodes);
    for (const fault::CrashInterval& c : plan.crashes()) {
      fabric.status_board().add_outage(c.node, c.down_at, c.up_at);
    }
    injector = std::make_unique<fault::FaultInjector>(
        control_engine, node_ptrs, config.k, std::move(plan),
        fault_master.split());
    std::vector<sim::Engine*> lane_engines;
    lane_engines.reserve(static_cast<std::size_t>(total_nodes));
    for (int i = 0; i < total_nodes; ++i) {
      lane_engines.push_back(&fabric.engine_for_lane(i));
    }
    injector->set_lane_engines(std::move(lane_engines));
    injector->arm();
  }

  // --- run ------------------------------------------------------------------
  fabric.run(config.sim_time);

  // --- results --------------------------------------------------------------
  RunResult result;
  result.collector = std::move(collector);
  double util = 0.0, link_util = 0.0;
  std::uint64_t local_aborts = 0, preemptions = 0;
  for (const auto& node : nodes) {
    (node->index() < config.k ? util : link_util) += node->utilization();
    result.node_utilizations.push_back(node->utilization());
    result.node_counters.push_back(node->perf_counters());
    local_aborts += node->aborted_locally();
    preemptions += node->preemptions();
  }
  result.mean_utilization = util / static_cast<double>(config.k);
  if (link_count > 0) {
    result.mean_link_utilization = link_util / static_cast<double>(link_count);
  }
  result.events_fired = fabric.events_fired();
  for (const auto& src : local_sources) {
    result.locals_generated += src->generated();
  }
  result.globals_generated =
      parallel_source ? parallel_source->generated()
                      : (graph_source ? graph_source->generated() : 0);
  result.globals_completed = pm.completed_runs();
  result.globals_aborted = pm.aborted_runs();
  result.local_scheduler_aborts = local_aborts;
  result.resubmissions = pm.resubmissions();
  result.preemptions = preemptions;
  if (injector) {
    result.node_crashes = injector->crashes();
    result.transient_failures = injector->transient_failures();
    result.messages_lost = injector->messages_lost();
  }
  result.fault_retries = pm.fault_retries();
  result.failovers = pm.failovers();
  result.globals_shed = pm.shed_runs();
  if (admission_ptr != nullptr) {
    result.admission_enabled = true;
    result.admission = admission_ptr->stats();
    result.plan_cache = admission_ptr->cache_stats();
    result.admission_final_state = admission_ptr->state();
    if (parallel_source) {
      result.globals_not_admitted = parallel_source->not_admitted();
    }
  }
  return result;
}

}  // namespace sda::exp::detail
