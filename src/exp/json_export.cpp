#include "src/exp/json_export.hpp"

#include <charconv>
#include <string>

#include "src/metrics/json_writer.hpp"
#include "src/metrics/percentile.hpp"
#include "src/metrics/task_class.hpp"

namespace sda::exp {

namespace {

using metrics::JsonWriter;

/// uint64 as "0x..." so JavaScript readers (Perfetto UI, jq) never round
/// it through a double.
std::string hex64(std::uint64_t v) {
  char buf[19] = "0x";
  const auto res = std::to_chars(buf + 2, buf + sizeof buf, v, 16);
  return std::string(buf, res.ptr - buf);
}

void quantiles_object(JsonWriter& w, const metrics::LogHistogram& h) {
  const metrics::Quantiles q = metrics::summarize(h);
  w.begin_object();
  w.kv("count", q.count);
  w.kv("mean", q.mean);
  w.kv("p50", q.p50);
  w.kv("p90", q.p90);
  w.kv("p99", q.p99);
  w.kv("p999", q.p999);
  w.end_object();
}

void distribution_set_object(JsonWriter& w, const metrics::DistributionSet& d) {
  w.begin_object();
  w.key("response");
  quantiles_object(w, d.response);
  w.key("tardiness");
  quantiles_object(w, d.tardiness);
  w.end_object();
}

/// The "distributions" member: {"classes": {"<cls>": {...}}, "nodes":
/// {"<node>": {...}}}.  Shared by run and report lines.
void distributions_member(JsonWriter& w, const metrics::Collector& c) {
  w.key("distributions").begin_object();
  w.key("classes").begin_object();
  for (const int cls : c.distribution_classes()) {
    if (const metrics::DistributionSet* d = c.class_distributions(cls)) {
      w.key(std::to_string(cls));
      distribution_set_object(w, *d);
    }
  }
  w.end_object();
  w.key("nodes").begin_object();
  for (const int node : c.distribution_nodes()) {
    if (const metrics::DistributionSet* d = c.node_distributions(node)) {
      w.key(std::to_string(node));
      distribution_set_object(w, *d);
    }
  }
  w.end_object();
  w.end_object();
}

void interval_object(JsonWriter& w, const util::ConfidenceInterval& ci) {
  w.begin_object();
  w.kv("mean", ci.mean);
  w.kv("half_width", ci.half_width);
  w.kv("n", static_cast<std::uint64_t>(ci.n));
  w.end_object();
}

void config_member(JsonWriter& w, const ExperimentConfig& config) {
  w.key("config").begin_object();
  for (const auto& [key, value] : config.to_kv()) w.kv(key, value);
  w.end_object();
}

}  // namespace

void write_run_json_line(const ExperimentConfig& config, int rep,
                         std::uint64_t seed, std::uint64_t fingerprint,
                         const RunResult& result, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "sda.run.v1");
  w.kv("rep", rep);
  w.kv("seed", hex64(seed));
  w.kv("fingerprint", hex64(fingerprint));
  w.kv("sim_time", config.sim_time);

  w.key("diag").begin_object();
  w.kv("events_fired", result.events_fired);
  w.kv("mean_utilization", result.mean_utilization);
  w.kv("mean_link_utilization", result.mean_link_utilization);
  w.kv("locals_generated", result.locals_generated);
  w.kv("globals_generated", result.globals_generated);
  w.kv("globals_completed", result.globals_completed);
  w.kv("globals_aborted", result.globals_aborted);
  w.kv("globals_shed", result.globals_shed);
  w.kv("local_scheduler_aborts", result.local_scheduler_aborts);
  w.kv("resubmissions", result.resubmissions);
  w.kv("preemptions", result.preemptions);
  w.kv("node_crashes", result.node_crashes);
  w.kv("transient_failures", result.transient_failures);
  w.kv("messages_lost", result.messages_lost);
  w.kv("fault_retries", result.fault_retries);
  w.kv("failovers", result.failovers);
  w.end_object();

  if (result.admission_enabled) {
    w.key("admission").begin_object();
    w.kv("submitted", result.admission.submitted);
    w.kv("admitted", result.admission.admitted);
    w.kv("admitted_degraded", result.admission.admitted_degraded);
    w.kv("rejected", result.admission.rejected);
    w.kv("shed", result.admission.shed);
    w.kv("not_admitted", result.globals_not_admitted);
    w.kv("final_state", core::to_string(result.admission_final_state));
    w.key("transitions").begin_object();
    w.kv("to_degraded", result.admission.to_degraded);
    w.kv("to_shedding", result.admission.to_shedding);
    w.kv("to_normal", result.admission.to_normal);
    w.end_object();
    w.key("plan_cache").begin_object();
    w.kv("hits", result.plan_cache.hits);
    w.kv("misses", result.plan_cache.misses);
    w.kv("evictions", result.plan_cache.evictions);
    w.end_object();
    w.end_object();
  }

  w.key("classes").begin_array();
  for (const int cls : result.collector.classes()) {
    const metrics::ClassCounts counts = result.collector.counts(cls);
    const metrics::ClassTimings timings = result.collector.timings(cls);
    w.begin_object();
    w.kv("cls", cls);
    w.kv("name", metrics::default_class_name(cls));
    w.kv("finished", counts.finished);
    w.kv("missed", counts.missed);
    w.kv("aborted", counts.aborted);
    w.kv("miss_rate", counts.miss_rate());
    w.kv("work_total", counts.work_total);
    w.kv("work_missed", counts.work_missed);
    w.kv("mean_response", timings.response.mean());
    w.kv("mean_tardiness", timings.tardiness.mean());
    w.end_object();
  }
  w.end_array();

  w.key("nodes").begin_array();
  for (const sched::Node::PerfCounters& pc : result.node_counters) {
    w.begin_object();
    w.kv("node", pc.node);
    w.kv("busy_time", pc.busy_time);
    w.kv("idle_time", pc.idle_time);
    w.kv("utilization", pc.utilization);
    w.kv("submissions", pc.submissions);
    w.kv("completed", pc.completed);
    w.kv("aborted_locally", pc.aborted_locally);
    w.kv("aborted_externally", pc.aborted_externally);
    w.kv("preemptions", pc.preemptions);
    w.kv("failed", pc.failed);
    w.kv("crashes", pc.crashes);
    w.kv("queue_high_water", static_cast<std::uint64_t>(pc.queue_high_water));
    w.kv("abort_timers_armed", pc.abort_timers_armed);
    w.kv("abort_timers_cancelled", pc.abort_timers_cancelled);
    w.kv("queue_depth_samples", pc.queue_depth_samples);
    w.kv("queue_depth_mean", pc.queue_depth_mean);
    w.end_object();
  }
  w.end_array();

  if (result.collector.distributions_enabled()) {
    distributions_member(w, result.collector);
  }

  w.end_object();
  os << '\n';
}

void write_report_json_line(
    const ExperimentConfig& config, const metrics::Report& report,
    const std::vector<std::uint64_t>& fingerprints,
    const metrics::Collector* merged_distributions, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "sda.report.v1");
  w.kv("replications", static_cast<std::uint64_t>(report.replications()));
  config_member(w, config);

  w.key("classes").begin_array();
  for (const int cls : report.classes()) {
    const metrics::ClassSummary s = report.summary(cls);
    w.begin_object();
    w.kv("cls", cls);
    w.kv("name", metrics::default_class_name(cls));
    w.key("miss_rate");
    interval_object(w, s.miss_rate);
    w.key("missed_work_rate");
    interval_object(w, s.missed_work_rate);
    w.kv("finished_total", s.finished_total);
    w.end_object();
  }
  w.end_array();

  w.key("overall_missed_work");
  interval_object(w, report.overall_missed_work());
  w.kv("global_retries", report.global_retries_total());
  w.kv("shed_runs", report.shed_runs_total());

  w.key("fingerprints").begin_array();
  for (const std::uint64_t fp : fingerprints) w.value(hex64(fp));
  w.end_array();

  if (merged_distributions != nullptr &&
      merged_distributions->distributions_enabled()) {
    distributions_member(w, *merged_distributions);
  }

  w.end_object();
  os << '\n';
}

}  // namespace sda::exp
