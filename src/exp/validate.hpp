// Whole-config validation with actionable messages.
//
// run_once performs piecemeal validation as it assembles the system; this
// pass checks an ExperimentConfig up-front and reports *every* problem at
// once, which is what interactive drivers (examples/run_experiment) want.
#pragma once

#include <string>
#include <vector>

#include "src/exp/config.hpp"

namespace sda::exp {

/// Returns all problems found in @p config (empty = valid).  Checks cover
/// system shape (k, speeds, scheduler/placement names), strategy names,
/// workload ranges (load, frac_local, slack, n vs k, stage widths), link
/// modeling, and run control (sim_time, replications, warmup).
std::vector<std::string> validate(const ExperimentConfig& config);

/// Throws std::invalid_argument listing every problem when invalid.
void validate_or_throw(const ExperimentConfig& config);

}  // namespace sda::exp
