#include "src/exp/validate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/core/admission.hpp"
#include "src/core/strategy.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/timer_queue.hpp"
#include "src/workload/exec_dist.hpp"
#include "src/workload/placement.hpp"

namespace sda::exp {

std::vector<std::string> validate(const ExperimentConfig& c) {
  std::vector<std::string> problems;
  auto bad = [&](const std::string& what) { problems.push_back(what); };

  // --- system ---------------------------------------------------------------
  if (c.k <= 0) bad("k must be positive");
  if (!c.node_speeds.empty()) {
    if (c.node_speeds.size() != static_cast<std::size_t>(c.k)) {
      bad("node_speeds must be empty or have exactly k entries");
    }
    for (double s : c.node_speeds) {
      if (!(s > 0.0)) {
        bad("node speeds must be positive");
        break;
      }
    }
  }
  try {
    (void)sched::make_scheduler(c.scheduler_policy);
  } catch (const std::exception& e) {
    bad(e.what());
  }

  // --- strategies ------------------------------------------------------------
  try {
    (void)core::make_psp_strategy(c.psp);
  } catch (const std::exception& e) {
    bad(e.what());
  }
  try {
    (void)core::make_ssp_strategy(c.ssp);
  } catch (const std::exception& e) {
    bad(e.what());
  }
  try {
    (void)sim::make_timer_queue(c.timer_queue);
  } catch (const std::exception& e) {
    bad(e.what());
  }

  // --- workload --------------------------------------------------------------
  if (c.load < 0.0) bad("load must be >= 0");
  // Overload (load >= 1) is a legal, deliberate configuration when the
  // admission gate is on — that is the regime it exists for.  Without
  // the gate the queues grow without bound, so keep the guard.
  if (c.load >= 1.0 && !c.admission) {
    bad("load must be < 1 for a stable system (or enable admission=1)");
  }
  if (c.frac_local < 0.0 || c.frac_local > 1.0) {
    bad("frac_local must be in [0, 1]");
  }
  if (c.mu_local <= 0.0) bad("mu_local must be positive");
  if (c.mu_subtask <= 0.0) bad("mu_subtask must be positive");
  if (c.slack_min < 0.0 || c.slack_min > c.slack_max) {
    bad("need 0 <= slack_min <= slack_max");
  }
  if (c.local_burst_factor < 1.0) bad("local_burst_factor must be >= 1");
  if (c.local_burst_cycle <= 0.0) bad("local_burst_cycle must be positive");
  if (c.subtask_exec_spread < 1.0) bad("subtask_exec_spread must be >= 1");
  try {
    (void)workload::make_placement(c.placement, {});
  } catch (const std::exception& e) {
    bad(e.what());
  }
  try {
    (void)workload::make_exec_distribution(c.service_dist, 1.0, c.service_cv);
  } catch (const std::exception& e) {
    bad(e.what());
  }

  if (c.global_kind == GlobalKind::kParallel) {
    if (c.n_min < 1 || c.n_min > c.n_max) bad("need 1 <= n_min <= n_max");
    if (c.n_max > c.k) {
      bad("n_max exceeds k (parallel subtasks need distinct nodes)");
    }
  } else {
    if (c.stage_widths.empty()) bad("stage_widths must not be empty");
    for (int w : c.stage_widths) {
      if (w < 1 || w > c.k) {
        bad("every stage width must be in [1, k]");
        break;
      }
    }
    if (c.link_count < 0) bad("link_count must be >= 0");
    if (c.link_count > 0 && c.mean_msg_time <= 0.0) {
      bad("mean_msg_time must be positive when links are modeled");
    }
  }
  const auto [gs_min, gs_max] = c.resolved_global_slack();
  if (gs_min > gs_max) bad("global slack range is inverted");

  // --- faults / recovery -----------------------------------------------------
  if (c.fault_rate < 0.0 || c.fault_rate >= 1.0) {
    bad("fault_rate must be in [0, 1)");
  }
  if (c.crash_mean_uptime < 0.0) bad("crash_mean_uptime must be >= 0");
  if (c.crash_mean_uptime > 0.0 && c.crash_mean_downtime <= 0.0) {
    bad("crash_mean_downtime must be positive when crashes are enabled");
  }
  if (c.msg_loss_rate < 0.0 || c.msg_loss_rate >= 1.0) {
    bad("msg_loss_rate must be in [0, 1)");
  }
  if (c.msg_extra_delay_mean < 0.0) {
    bad("msg_extra_delay_mean must be >= 0");
  }
  if ((c.msg_loss_rate > 0.0 || c.msg_extra_delay_mean > 0.0) &&
      c.link_count == 0) {
    bad("message faults need link_count > 0 (kGraph workload)");
  }
  if (c.retry_backoff_base < 0.0) bad("retry_backoff_base must be >= 0");
  if (c.retry_backoff_base > 0.0 && c.retry_backoff_factor < 1.0) {
    bad("retry_backoff_factor must be >= 1");
  }
  if (c.retry_deadline != "sda" && c.retry_deadline != "stale") {
    bad("retry_deadline must be \"sda\" or \"stale\"");
  }

  // --- admission -------------------------------------------------------------
  if (c.global_burst_factor < 1.0) bad("global_burst_factor must be >= 1");
  if (c.global_burst_cycle <= 0.0) bad("global_burst_cycle must be positive");
  if (c.admission) {
    try {
      // The controller's constructor re-validates thresholds, stretch,
      // headroom, and the test battery; borrow its checks.
      (void)core::AdmissionController(c.admission_config());
    } catch (const std::exception& e) {
      bad(e.what());
    }
    if (c.global_kind != GlobalKind::kParallel) {
      bad("admission=1 currently supports global_kind=parallel only");
    }
  }

  // --- parallel execution ----------------------------------------------------
  if (c.shards < 1) bad("shards must be >= 1");
  const int total_nodes = c.k + (c.global_kind == GlobalKind::kGraph
                                     ? std::max(c.link_count, 0)
                                     : 0);
  if (c.shards > total_nodes) {
    bad("shards must not exceed the node count (k" +
        std::string(c.global_kind == GlobalKind::kGraph ? " + link_count" : "") +
        " = " + std::to_string(total_nodes) + ")");
  }
  if (c.net_latency < 0.0) bad("net_latency must be >= 0");
  if (c.shards > 1 && c.placement == "least-queued") {
    // Least-queued placement reads live node queue depths from the control
    // lane, which other shards own; only the serial engine can do that.
    bad("placement=least-queued requires shards=1 (reads live node state)");
  }

  // --- run control -------------------------------------------------------------
  if (c.sim_time <= 0.0) bad("sim_time must be positive");
  if (c.replications < 1) bad("replications must be >= 1");
  if (c.warmup_fraction < 0.0 || c.warmup_fraction >= 1.0) {
    bad("warmup_fraction must be in [0, 1)");
  }
  return problems;
}

void validate_or_throw(const ExperimentConfig& config) {
  const auto problems = validate(config);
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid experiment config:";
  for (const auto& p : problems) os << "\n  - " << p;
  throw std::invalid_argument(os.str());
}

}  // namespace sda::exp
