// Shared figure-regeneration helpers used by the bench binaries and the
// figure smoke tests (DESIGN.md Section 3 maps each paper figure to these).
#pragma once

#include <string>
#include <vector>

#include "src/exp/sweep.hpp"
#include "src/util/env.hpp"

namespace sda::exp::figures {

/// The load grid used by the load-sweep figures (5, 6, 7, 11, 15).
std::vector<double> default_loads();

/// Applies the bench environment's run-length settings to a config.
void apply_bench_env(ExperimentConfig& c, const util::BenchEnv& env);

/// One strategy's curve in a load-sweep figure.
struct LoadSweepSeries {
  std::string psp;  ///< PSP strategy name used
  std::string ssp;  ///< SSP strategy name used
  std::vector<SweepPoint> points;
};

/// Runs a load sweep for each (psp, ssp) pair on top of @p base.
std::vector<LoadSweepSeries> load_sweep(
    const ExperimentConfig& base,
    const std::vector<std::pair<std::string, std::string>>& strategies,
    const std::vector<double>& loads);

/// MD point estimate for a class at one sweep point.
double md(const SweepPoint& p, int cls);

/// MD confidence-interval half width for a class at one sweep point.
double md_hw(const SweepPoint& p, int cls);

/// Pooled global-task MD across all global_class(n) classes observed
/// (needed when n is drawn from a range).
double md_global_pooled(const SweepPoint& p);

}  // namespace sda::exp::figures
