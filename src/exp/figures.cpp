#include "src/exp/figures.hpp"

#include "src/metrics/task_class.hpp"

namespace sda::exp::figures {

std::vector<double> default_loads() {
  return {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

void apply_bench_env(ExperimentConfig& c, const util::BenchEnv& env) {
  util::warn_unknown_sda_env();  // no-op after bench_env() already warned
  c.sim_time = env.sim_time;
  c.replications = env.replications;
  c.warmup_fraction = env.warmup_fraction;
  c.seed = env.seed;
}

std::vector<LoadSweepSeries> load_sweep(
    const ExperimentConfig& base,
    const std::vector<std::pair<std::string, std::string>>& strategies,
    const std::vector<double>& loads) {
  std::vector<LoadSweepSeries> out;
  out.reserve(strategies.size());
  for (const auto& [psp, ssp] : strategies) {
    ExperimentConfig c = base;
    c.psp = psp;
    c.ssp = ssp;
    LoadSweepSeries series;
    series.psp = psp;
    series.ssp = ssp;
    series.points = sweep(
        c, loads, [](ExperimentConfig& cfg, double load) { cfg.load = load; });
    out.push_back(std::move(series));
  }
  return out;
}

double md(const SweepPoint& p, int cls) {
  return p.report.summary(cls).miss_rate.mean;
}

double md_hw(const SweepPoint& p, int cls) {
  return p.report.summary(cls).miss_rate.half_width;
}

double md_global_pooled(const SweepPoint& p) {
  // Weight each global class by its pooled finished count.
  double missed_weighted = 0.0;
  double finished = 0.0;
  for (int cls : p.report.classes()) {
    if (!metrics::is_global_class(cls)) continue;
    const metrics::ClassSummary s = p.report.summary(cls);
    missed_weighted +=
        s.miss_rate.mean * static_cast<double>(s.finished_total);
    finished += static_cast<double>(s.finished_total);
  }
  return finished > 0.0 ? missed_weighted / finished : 0.0;
}

}  // namespace sda::exp::figures
