// Write-ahead decision journal for the admission front door
// (`sda.journal.v1`): crash durability for `sda_run --serve`.
//
// The admission controller is a pure function of the accepted input
// lines, so the journal records exactly those — every *valid,
// state-changing* protocol line (`sub` after tree validation, `done`
// for a known run), in application order.  Replaying the journal
// through a fresh ServeSession reconstructs ledgers, retry queue,
// overload state, pressure EWMA, and plan cache bit-identically
// (tests/test_crash_recovery.cpp proves this against kill -9).
// Malformed lines are answered but never journaled: they change no
// admission state.
//
// On-disk format (text, one record per line, append-only):
//
//   sda.journal.v1                          <- header, first line
//   E <fnv1a64-hex16> <len> <payload>       <- one accepted input line
//   C <fnv1a64-hex16> <len> <payload>       <- checkpoint (summary JSON)
//
// The checksum covers the payload bytes; `len` is the payload length.
// A crash can only truncate the final record, and any torn tail fails
// the length or checksum test, so recovery replays the longest valid
// prefix and reports where (and why) it stopped.  A restarted writer
// truncates that torn tail before appending, so a crash-restart-crash
// sequence replays its records instead of losing them to a glued line.  Writes are batched:
// records buffer in user space and are written + fsync'd every
// `flush_every` records or when `flush_interval` elapses (the socket
// event loop calls maybe_flush on its timer tick), and always on
// checkpoint/close — a bounded-loss window traded for not paying an
// fsync per decision.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace sda::exp {

inline constexpr const char* kJournalHeader = "sda.journal.v1";

struct JournalRecord {
  char type = 'E';      ///< 'E' = event line, 'C' = checkpoint
  std::string payload;  ///< the raw protocol line / summary JSON
};

/// Result of reading a journal back.
struct JournalReadResult {
  bool ok = false;                     ///< file opened and header matched
  std::vector<JournalRecord> records;  ///< longest valid prefix
  bool truncated = false;              ///< a torn/corrupt tail was dropped
  /// Byte length of the longest valid prefix.  Everything past this
  /// offset is torn: an appender truncates to it first so the next
  /// record starts on a record boundary instead of gluing onto half a
  /// line (which would fail the checksum there on the following
  /// recovery and silently drop every record after it).
  std::uint64_t valid_bytes = 0;
  /// The valid prefix ends in a record whose trailing '\n' was lost to
  /// a torn write: the record itself is good (length and checksum
  /// pass), but an appender must restore the newline before writing.
  bool unterminated_tail = false;
  std::string diagnostic;              ///< why reading stopped, if it did
};

/// Reads every valid record from @p path.  Missing file: ok=false with
/// a diagnostic (callers treat that as "nothing to recover").  A
/// corrupt or torn record stops the scan — everything before it is
/// returned, `truncated` is set, and the diagnostic names the spot.
JournalReadResult read_journal(const std::string& path);

/// Append-only journal writer with batched fsync.
class JournalWriter {
 public:
  struct Config {
    std::size_t flush_every = 32;  ///< records per write+fsync batch
    std::chrono::milliseconds flush_interval{100};  ///< wall-clock bound
  };

  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens @p path for appending, writing the header if the file is
  /// new/empty (and fsyncing the parent directory so the file itself
  /// survives a crash).  An existing file must be an sda.journal.v1
  /// journal; any torn tail left by a previous crash is truncated back
  /// to the last record boundary before appending.
  /// Returns false (with @p error set) on open/header mismatch.
  bool open(const std::string& path, const Config& config,
            std::string* error);

  bool is_open() const noexcept {
    util::RoleGuard own(owner_);
    return fd_ >= 0;
  }

  /// Buffers one event record; flushes when the batch is full.
  /// Returns false once the underlying file has failed (the error is
  /// sticky; io_errors() counts every failed syscall batch).
  bool append_event(std::string_view line);

  /// Buffers a checkpoint record and forces a synchronous flush —
  /// checkpoints exist to be durable.
  bool append_checkpoint(std::string_view summary_json);

  /// Writes buffered records and fsyncs.  No-op when nothing pending.
  bool flush();

  /// Timer-driven flush: flushes when `flush_interval` has elapsed
  /// since the last flush and records are pending.
  bool maybe_flush(std::chrono::steady_clock::time_point now);

  /// Flushes and closes the fd.
  void close();

  std::uint64_t records_appended() const noexcept {
    util::RoleGuard own(owner_);
    return appended_;
  }
  std::uint64_t io_errors() const noexcept {
    util::RoleGuard own(owner_);
    return io_errors_;
  }

 private:
  bool append(char type, std::string_view payload, bool force_flush)
      SDA_REQUIRES(owner_);
  /// flush/close bodies shared by the public wrappers and internal
  /// owner-held callers (append's batch boundary, open's reopen).
  bool flush_impl() SDA_REQUIRES(owner_);
  void close_impl() SDA_REQUIRES(owner_);

  /// Single-owner role: one thread (the serve session driving it) owns
  /// the writer; the buffer and counters below are compile-time fenced
  /// to owner-entered call paths.
  util::ThreadRole owner_;
  int fd_ SDA_GUARDED_BY(owner_) = -1;
  Config config_ SDA_GUARDED_BY(owner_);
  /// Encoded records awaiting write.
  std::string buffer_ SDA_GUARDED_BY(owner_);
  /// Records in buffer_.
  std::size_t pending_ SDA_GUARDED_BY(owner_) = 0;
  /// Records accepted (buffered or written).
  std::uint64_t appended_ SDA_GUARDED_BY(owner_) = 0;
  std::uint64_t io_errors_ SDA_GUARDED_BY(owner_) = 0;
  /// Sticky after an unrecoverable error.
  bool failed_ SDA_GUARDED_BY(owner_) = false;
  std::chrono::steady_clock::time_point last_flush_ SDA_GUARDED_BY(owner_){};
};

}  // namespace sda::exp
