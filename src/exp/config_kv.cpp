// ExperimentConfig::set/get/to_kv — the textual field registry behind the
// sda_run front door.
//
// Every public field of ExperimentConfig appears exactly once in fields()
// below; set() and get() are inverse by construction, and the round-trip
// golden test (tests/test_config_kv.cpp) fails when a newly added config
// field is missing here.  Doubles are rendered with std::to_chars shortest
// round-trip form, so to_kv() -> set() reproduces bit-identical values.
#include <charconv>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/validate.hpp"
#include "src/util/env.hpp"

namespace sda::exp {

namespace {

std::string render_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

double parse_double(const std::string& key, const std::string& value) {
  double out = 0.0;
  const auto res = std::from_chars(value.data(), value.data() + value.size(), out);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size()) {
    throw std::invalid_argument("config key '" + key +
                                "': cannot parse '" + value + "' as a number");
  }
  return out;
}

long long parse_int(const std::string& key, const std::string& value) {
  long long out = 0;
  const auto res = std::from_chars(value.data(), value.data() + value.size(), out);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size()) {
    throw std::invalid_argument("config key '" + key +
                                "': cannot parse '" + value + "' as an integer");
  }
  return out;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument("config key '" + key + "': cannot parse '" +
                              value + "' as a bool (use true/false)");
}

/// Splits "a,b,c" (empty string = empty list).
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  if (value.empty()) return out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = value.find(',', start);
    out.push_back(value.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct Field {
  const char* key;
  std::string (*get)(const ExperimentConfig&);
  void (*set)(ExperimentConfig&, const std::string&);
};

// Macro per scalar kind: each expands to one Field with inverse get/set.
#define SDA_KV_DOUBLE(member)                                            \
  Field{#member,                                                         \
        [](const ExperimentConfig& c) { return render_double(c.member); }, \
        [](ExperimentConfig& c, const std::string& v) {                  \
          c.member = parse_double(#member, v);                           \
        }}
#define SDA_KV_INT(member)                                               \
  Field{#member,                                                         \
        [](const ExperimentConfig& c) { return std::to_string(c.member); }, \
        [](ExperimentConfig& c, const std::string& v) {                  \
          c.member = static_cast<int>(parse_int(#member, v));            \
        }}
#define SDA_KV_BOOL(member)                                              \
  Field{#member,                                                         \
        [](const ExperimentConfig& c) {                                  \
          return std::string(c.member ? "true" : "false");               \
        },                                                               \
        [](ExperimentConfig& c, const std::string& v) {                  \
          c.member = parse_bool(#member, v);                             \
        }}
#define SDA_KV_STRING(member)                                            \
  Field{#member, [](const ExperimentConfig& c) { return c.member; },     \
        [](ExperimentConfig& c, const std::string& v) { c.member = v; }}

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      // --- system ---------------------------------------------------------
      SDA_KV_INT(k),
      SDA_KV_STRING(scheduler_policy),
      Field{"local_abort",
            [](const ExperimentConfig& c) {
              return std::string(sched::to_string(c.local_abort));
            },
            [](ExperimentConfig& c, const std::string& v) {
              if (v == "none") {
                c.local_abort = sched::LocalAbortPolicy::kNone;
              } else if (v == "virtual-deadline") {
                c.local_abort =
                    sched::LocalAbortPolicy::kAbortOnVirtualDeadline;
              } else {
                throw std::invalid_argument(
                    "config key 'local_abort': expected none or "
                    "virtual-deadline, got '" + v + "'");
              }
            }},
      SDA_KV_BOOL(preemptive),
      Field{"node_speeds",
            [](const ExperimentConfig& c) {
              std::string out;
              for (std::size_t i = 0; i < c.node_speeds.size(); ++i) {
                if (i) out += ',';
                out += render_double(c.node_speeds[i]);
              }
              return out;
            },
            [](ExperimentConfig& c, const std::string& v) {
              std::vector<double> speeds;
              for (const std::string& part : split_csv(v)) {
                speeds.push_back(parse_double("node_speeds", part));
              }
              c.node_speeds = std::move(speeds);
            }},
      // --- deadline assignment --------------------------------------------
      SDA_KV_STRING(psp),
      SDA_KV_STRING(ssp),
      Field{"pm_abort",
            [](const ExperimentConfig& c) {
              return std::string(c.pm_abort == core::PmAbortMode::kRealDeadline
                                     ? "real-deadline"
                                     : "none");
            },
            [](ExperimentConfig& c, const std::string& v) {
              if (v == "none") {
                c.pm_abort = core::PmAbortMode::kNone;
              } else if (v == "real-deadline") {
                c.pm_abort = core::PmAbortMode::kRealDeadline;
              } else {
                throw std::invalid_argument(
                    "config key 'pm_abort': expected none or real-deadline, "
                    "got '" + v + "'");
              }
            }},
      SDA_KV_BOOL(subtasks_non_abortable),
      // --- workload -------------------------------------------------------
      SDA_KV_DOUBLE(load),
      SDA_KV_DOUBLE(frac_local),
      SDA_KV_DOUBLE(mu_local),
      SDA_KV_DOUBLE(mu_subtask),
      SDA_KV_DOUBLE(local_burst_factor),
      SDA_KV_DOUBLE(local_burst_cycle),
      SDA_KV_STRING(service_dist),
      SDA_KV_DOUBLE(service_cv),
      SDA_KV_DOUBLE(slack_min),
      SDA_KV_DOUBLE(slack_max),
      Field{"global_kind",
            [](const ExperimentConfig& c) {
              return std::string(
                  c.global_kind == GlobalKind::kGraph ? "graph" : "parallel");
            },
            [](ExperimentConfig& c, const std::string& v) {
              if (v == "parallel") {
                c.global_kind = GlobalKind::kParallel;
              } else if (v == "graph") {
                c.global_kind = GlobalKind::kGraph;
              } else {
                throw std::invalid_argument(
                    "config key 'global_kind': expected parallel or graph, "
                    "got '" + v + "'");
              }
            }},
      SDA_KV_INT(n_min),
      SDA_KV_INT(n_max),
      Field{"stage_widths",
            [](const ExperimentConfig& c) {
              std::string out;
              for (std::size_t i = 0; i < c.stage_widths.size(); ++i) {
                if (i) out += ',';
                out += std::to_string(c.stage_widths[i]);
              }
              return out;
            },
            [](ExperimentConfig& c, const std::string& v) {
              std::vector<int> widths;
              for (const std::string& part : split_csv(v)) {
                widths.push_back(
                    static_cast<int>(parse_int("stage_widths", part)));
              }
              c.stage_widths = std::move(widths);
            }},
      SDA_KV_INT(link_count),
      SDA_KV_DOUBLE(mean_msg_time),
      SDA_KV_DOUBLE(global_slack_min),
      SDA_KV_DOUBLE(global_slack_max),
      Field{"pex",
            [](const ExperimentConfig& c) {
              switch (c.pex.kind()) {
                case workload::PexKind::kExact: return std::string("exact");
                case workload::PexKind::kLogUniformNoise:
                  return "noise-" + render_double(c.pex.parameter());
                case workload::PexKind::kDistributionMean:
                  return "mean-" + render_double(c.pex.parameter());
              }
              return std::string("exact");
            },
            [](ExperimentConfig& c, const std::string& v) {
              if (v == "exact") {
                c.pex = workload::PexModel::exact();
              } else if (v.rfind("noise-", 0) == 0) {
                c.pex = workload::PexModel::log_uniform(
                    parse_double("pex", v.substr(6)));
              } else if (v.rfind("mean-", 0) == 0) {
                c.pex = workload::PexModel::distribution_mean(
                    parse_double("pex", v.substr(5)));
              } else {
                throw std::invalid_argument(
                    "config key 'pex': expected exact, noise-<factor>, or "
                    "mean-<value>, got '" + v + "'");
              }
            }},
      SDA_KV_DOUBLE(subtask_exec_spread),
      SDA_KV_STRING(placement),
      SDA_KV_BOOL(tardiness_histograms),
      SDA_KV_BOOL(distributions),
      // --- faults ---------------------------------------------------------
      SDA_KV_DOUBLE(fault_rate),
      SDA_KV_DOUBLE(crash_mean_uptime),
      SDA_KV_DOUBLE(crash_mean_downtime),
      SDA_KV_BOOL(crash_discards_queue),
      SDA_KV_DOUBLE(msg_loss_rate),
      SDA_KV_DOUBLE(msg_extra_delay_mean),
      // --- recovery -------------------------------------------------------
      SDA_KV_INT(max_retries_per_run),
      SDA_KV_DOUBLE(retry_backoff_base),
      SDA_KV_DOUBLE(retry_backoff_factor),
      SDA_KV_BOOL(retry_failover),
      SDA_KV_STRING(retry_deadline),
      SDA_KV_BOOL(shed_negative_slack),
      // --- online admission control ---------------------------------------
      SDA_KV_BOOL(admission),
      SDA_KV_STRING(admission_tests),
      SDA_KV_DOUBLE(admission_util_bound),
      SDA_KV_DOUBLE(admission_enter_degraded),
      SDA_KV_DOUBLE(admission_exit_degraded),
      SDA_KV_DOUBLE(admission_enter_shedding),
      SDA_KV_DOUBLE(admission_exit_shedding),
      SDA_KV_DOUBLE(admission_pressure_alpha),
      SDA_KV_DOUBLE(admission_degrade_stretch),
      SDA_KV_DOUBLE(admission_shed_headroom),
      SDA_KV_BOOL(admission_plan_cache),
      SDA_KV_INT(admission_plan_cache_capacity),
      SDA_KV_DOUBLE(global_burst_factor),
      SDA_KV_DOUBLE(global_burst_cycle),
      // --- parallel execution ---------------------------------------------
      SDA_KV_INT(shards),
      SDA_KV_DOUBLE(net_latency),
      SDA_KV_STRING(timer_queue),
      // --- run control ----------------------------------------------------
      SDA_KV_DOUBLE(sim_time),
      SDA_KV_DOUBLE(warmup_fraction),
      SDA_KV_INT(replications),
      Field{"seed",
            [](const ExperimentConfig& c) { return std::to_string(c.seed); },
            [](ExperimentConfig& c, const std::string& v) {
              c.seed = static_cast<std::uint64_t>(parse_int("seed", v));
            }},
  };
  return kFields;
}

#undef SDA_KV_DOUBLE
#undef SDA_KV_INT
#undef SDA_KV_BOOL
#undef SDA_KV_STRING

const Field* find_field(const std::string& key) {
  for (const Field& f : fields()) {
    if (key == f.key) return &f;
  }
  return nullptr;
}

[[noreturn]] void unknown_key(const std::string& key) {
  std::ostringstream os;
  os << "unknown config key '" << key << "'";
  const std::string suggestion =
      util::closest_match(key, ExperimentConfig::known_keys());
  if (!suggestion.empty()) os << " — did you mean '" << suggestion << "'?";
  os << " (sda_run --list-keys prints all keys)";
  throw std::invalid_argument(os.str());
}

}  // namespace

void ExperimentConfig::set(const std::string& key, const std::string& value) {
  const Field* f = find_field(key);
  if (f == nullptr) unknown_key(key);
  f->set(*this, value);
}

std::string ExperimentConfig::get(const std::string& key) const {
  const Field* f = find_field(key);
  if (f == nullptr) unknown_key(key);
  return f->get(*this);
}

std::vector<std::pair<std::string, std::string>> ExperimentConfig::to_kv()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(fields().size());
  for (const Field& f : fields()) out.emplace_back(f.key, f.get(*this));
  return out;
}

std::vector<std::string> ExperimentConfig::known_keys() {
  std::vector<std::string> out;
  out.reserve(fields().size());
  for (const Field& f : fields()) out.emplace_back(f.key);
  return out;
}

std::vector<std::string> ExperimentConfig::validate() const {
  return exp::validate(*this);
}

void ExperimentConfig::validate_or_throw() const {
  exp::validate_or_throw(*this);
}

}  // namespace sda::exp
