// The serve-mode wire protocol: a strict incremental line parser with
// explicit limits, shared by the istream harness (exp::serve_stream)
// and the socket front door (exp::net::ServeServer).
//
// One record per newline-terminated line:
//
//   sub id=<u64> at=<t> deadline=<rel> tree=<notation to end of line>
//   done id=<u64> [at=<t>] [leaf=<u32>]
//   # comment — ignored, as are blank lines
//
// Hardening contract: parsing NEVER throws and NEVER aborts the
// process, whatever the bytes.  Every malformed line yields a
// ParsedLine whose `error` is non-empty (with a machine-readable
// `code`), which the session answers with one `sda.error.v1` reply.
// Numbers parse through std::from_chars — locale-independent, no
// exceptions, trailing junk rejected — and size limits bound every
// allocation a hostile client can force.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sda::exp {

/// Bounds a single protocol line.  Defaults are generous for real
/// workloads and tight enough that a hostile client cannot force
/// unbounded allocation or a deep notation-parser recursion.
struct ProtocolLimits {
  std::size_t max_line_bytes = 64 * 1024;  ///< whole line, pre-split
  std::size_t max_tree_bytes = 8 * 1024;   ///< the tree= payload
  std::size_t max_value_bytes = 64;        ///< any non-tree value
  std::size_t max_fields = 16;             ///< key=value fields per line
};

/// Machine-readable category for sda.error.v1 replies.
enum class ProtocolErrorCode {
  kNone,       ///< line parsed clean
  kParse,      ///< malformed token / bad value / duplicate key
  kLimit,      ///< a ProtocolLimits bound was exceeded
  kVerb,       ///< unknown verb
  kField,      ///< missing or out-of-range field
  kClock,      ///< stream clock violation (set by the session)
  kTree,       ///< notation parse / validation failure (session)
  kUnknownId,  ///< done for an unknown or already-retired id (session)
  kDuplicateId,///< sub with an id that is still in flight (session)
  kIo          ///< journal / transport IO failure (session)
};

const char* to_string(ProtocolErrorCode code) noexcept;

/// One parsed line.  `error` non-empty means malformed: no other field
/// except `id`/`has_id` (reported when it parsed before the error) may
/// be trusted.
struct ParsedLine {
  bool ignorable = false;  ///< blank line or '#' comment
  std::string verb;
  std::uint64_t id = 0;
  bool has_id = false;
  double at = 0.0;
  bool has_at = false;
  double deadline = 0.0;
  bool has_deadline = false;
  std::string tree;
  bool has_tree = false;
  std::uint32_t leaf = 0;
  bool has_leaf = false;
  std::string error;  ///< non-empty = malformed
  ProtocolErrorCode code = ProtocolErrorCode::kNone;
};

/// Parses one line (no trailing newline; one trailing '\r' is stripped
/// for CRLF clients).  Total: every byte sequence produces either an
/// ignorable line, a clean parse, or a structured error.
ParsedLine parse_serve_line(std::string_view text,
                            const ProtocolLimits& limits);

/// Splits a byte stream into protocol lines with bounded buffering —
/// the incremental half of the parser, used by the socket transport.
/// Bytes are fed in arbitrary chunks; complete lines come out.  A line
/// longer than `max_line_bytes` is reported once as oversized and then
/// discarded through the next newline without ever buffering more than
/// the limit (a hostile client cannot grow the buffer).
class LineSplitter {
 public:
  explicit LineSplitter(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends @p chunk. Calls @p on_line(line, oversized) for each
  /// completed line, in order.  `oversized` lines arrive truncated
  /// (first max_line_bytes bytes) and must be answered with an error.
  template <typename OnLine>
  void feed(std::string_view chunk, OnLine&& on_line) {
    for (const char c : chunk) {
      if (discarding_) {
        if (c == '\n') discarding_ = false;
        continue;
      }
      if (c == '\n') {
        on_line(std::string_view(buffer_), overflowed_);
        buffer_.clear();
        overflowed_ = false;
        continue;
      }
      if (buffer_.size() >= max_line_bytes_) {
        // Report the truncated prefix once, then drop to the newline.
        on_line(std::string_view(buffer_), true);
        buffer_.clear();
        overflowed_ = false;
        discarding_ = true;
        continue;
      }
      buffer_.push_back(c);
    }
  }

  /// End of stream: hands over a final unterminated line, if any (the
  /// "truncated final line" case — processed like a complete line,
  /// matching what std::getline does for the istream harness).
  template <typename OnLine>
  void finish(OnLine&& on_line) {
    if (!buffer_.empty()) {
      on_line(std::string_view(buffer_), overflowed_);
      buffer_.clear();
    }
    overflowed_ = false;
    discarding_ = false;
  }

  bool has_partial() const noexcept { return !buffer_.empty() || discarding_; }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool overflowed_ = false;   ///< current line already hit the limit
  bool discarding_ = false;   ///< skipping to the next newline
};

}  // namespace sda::exp
