// CSV export of sweep results, for external plotting (gnuplot/matplotlib).
//
// Each figure bench can dump its series with one call; the schema is
// long-form: one row per (x, class) pair with miss-rate mean, CI half
// width, missed-work rate and pooled sample count.
#pragma once

#include <string>
#include <vector>

#include "src/exp/sweep.hpp"

namespace sda::exp {

/// Renders the points as CSV text with header
/// `x,class,class_name,miss_rate,miss_rate_hw,missed_work,finished`.
/// Classes absent from a point are skipped.
std::string sweep_to_csv(const std::vector<SweepPoint>& points,
                         const std::string& x_name = "x");

/// Renders several named series into one CSV with a leading `series`
/// column (long form; convenient for ggplot-style tooling).
std::string series_to_csv(
    const std::vector<std::pair<std::string, std::vector<SweepPoint>>>& series,
    const std::string& x_name = "x");

/// Writes @p content to @p path, creating/truncating the file.
/// Returns false (without throwing) when the file cannot be opened.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace sda::exp
