// Parameter sweeps: one figure series = one sweep.
#pragma once

#include <functional>
#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/report.hpp"

namespace sda::exp {

/// One x-position of a figure, with the aggregated replications.
struct SweepPoint {
  double x = 0.0;
  metrics::Report report;
};

/// Mutator applying the sweep variable to a config (e.g. set the load).
using ApplyFn = std::function<void(ExperimentConfig&, double)>;

/// Runs run_experiment at every x in @p xs, on copies of @p base mutated by
/// @p apply.  Points are independent; each uses the base seed schedule so
/// series differing only in strategy share arrival randomness (common
/// random numbers, reducing comparison variance like the paper's paired
/// runs).
std::vector<SweepPoint> sweep(const ExperimentConfig& base,
                              const std::vector<double>& xs,
                              const ApplyFn& apply);

/// n evenly spaced values from lo to hi inclusive (n >= 2), or {lo} if n==1.
std::vector<double> linspace(double lo, double hi, int n);

}  // namespace sda::exp
