// Parameter sweeps: one figure series = one sweep.
#pragma once

#include <vector>

#include "src/exp/config.hpp"
#include "src/exp/runner.hpp"
#include "src/metrics/report.hpp"
#include "src/util/function_ref.hpp"
#include "src/util/thread_pool.hpp"

namespace sda::exp {

/// One x-position of a figure, with the aggregated replications.
struct SweepPoint {
  double x = 0.0;
  metrics::Report report;
};

/// Mutator applying the sweep variable to a config (e.g. set the load).
/// Non-owning: sweep() materializes every config before returning, so a
/// lambda temporary at the call site is fine.
using ApplyFn = util::FunctionRef<void(ExperimentConfig&, double)>;

/// Runs run_experiment at every x in @p xs, on copies of @p base mutated by
/// @p apply.  Points are independent; each uses the base seed schedule so
/// series differing only in strategy share arrival randomness (common
/// random numbers, reducing comparison variance like the paper's paired
/// runs).
///
/// Execution is flattened to (point x replication) cells on the shared
/// work-stealing pool, so a whole figure saturates every core instead of
/// parallelizing only within one point's replications.  Cells are folded
/// back in (point, replication) order, which keeps every Report
/// bit-identical to the sequential path regardless of pool size.
std::vector<SweepPoint> sweep(const ExperimentConfig& base,
                              const std::vector<double>& xs, ApplyFn apply);

/// Same, on an explicit pool (determinism tests compare pool sizes).
std::vector<SweepPoint> sweep(const ExperimentConfig& base,
                              const std::vector<double>& xs, ApplyFn apply,
                              util::ThreadPool& pool);

/// n evenly spaced values from lo to hi inclusive (n >= 2), or {lo} if n==1.
std::vector<double> linspace(double lo, double hi, int n);

}  // namespace sda::exp
