// The long-running admission front door behind `sda_run --serve`.
//
// The protocol (see src/exp/protocol.hpp for the grammar and limits):
//
//   sub id=<u64> at=<time> deadline=<rel> tree=<notation to end of line>
//   done id=<u64> [at=<time>] [leaf=<u32>]
//   # comment — ignored, as are blank lines
//
// `at` is the submission's logical clock (monotonically non-decreasing;
// the stream owns time, serve never reads a wall clock for decisions),
// `deadline` is relative to `at`, and `tree` uses the task notation
// with bound nodes and demands ("[a@0:2 || b@1:1.5]").  `done` retires
// an admitted run's ledger reservations early; `done ... leaf=<k>`
// retires just that leaf's reservation (partial completion), shrinking
// the completion-time ledgers immediately.  Both are the moments parked
// submissions get retried.
//
// The protocol engine is ServeSession: transport-independent, one line
// in, zero or more JSON replies out.  Three transports drive it:
//
//   * serve_stream — any istream (pipe, file, FIFO); the deterministic
//     test harness.  Byte-identical output across reruns.
//   * exp::net::ServeServer — the epoll socket listener (net.hpp).
//   * journal replay — recovery feeds journaled lines back through the
//     same code path with emission suppressed (journal.hpp).
//
// Decisions are a pure function of the accepted input lines and the
// admission config: no RNG, no wall clock, no iteration over unordered
// containers.  Running the same stream twice — or with the plan cache
// on vs. off — produces byte-identical output, which the fingerprint
// tests assert.  Wall-clock latency measurement is therefore opt-in
// (`measure_latency`) and only ever shows up in the summary record.
//
// Malformed input is answered with one `sda.error.v1` record per bad
// line and never kills the stream (tests/test_serve_fuzz.cpp hammers
// this with seeded garbage).  A `done` for an id that is neither
// admitted nor parked is such an error: unknown or already retired.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/admission.hpp"
#include "src/exp/journal.hpp"
#include "src/exp/protocol.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace sda::exp {

struct ServeOptions {
  core::AdmissionConfig admission;
  /// Measure per-decision wall latency (steady_clock) and report
  /// count/p50/p90/p99/p99.9 plus sustained admissions/sec in the
  /// summary.  Off by default: timing fields are nondeterministic bytes.
  bool measure_latency = false;

  /// Protocol hardening limits (line/field/tree sizes).
  ProtocolLimits limits;

  /// Write-ahead journal path.  Empty = no journal.  When set, an
  /// existing journal at that path is replayed before new input is
  /// accepted (crash recovery), then appended to.
  std::string journal_path;
  /// fsync batching for the journal.
  std::size_t journal_flush_every = 32;
  int journal_flush_interval_ms = 100;
  /// Replay the journal but do not append (read-only recovery check).
  bool journal_replay_only = false;

  /// Decision-latency deadline in nanoseconds (0 = off).  A decision
  /// that takes longer trips the overload state machine into shedding:
  /// the service degrades admission quality instead of queueing work it
  /// can no longer decide on time.  Wall-clock driven, so off by
  /// default in the deterministic harness.
  std::uint64_t decision_deadline_ns = 0;

  /// Attach a "retry_after" hint (relative stream time) to shed and
  /// backpressure decisions — the client's cue for when resubmission
  /// is worth trying.  Deterministic (derived from pressure), but off
  /// by default to keep PR-5-era byte compatibility.
  bool retry_hints = false;
  double retry_after_base = 1.0;
};

/// Socket-transport counters, folded into the drain summary when the
/// session is driven by exp::net::ServeServer.
struct ServeNetStats {
  std::uint64_t accepted = 0;            ///< connections accepted
  std::uint64_t rejected_connections = 0;///< over max_connections
  std::uint64_t evicted_slow = 0;        ///< write buffer overflow
  std::uint64_t evicted_idle = 0;        ///< idle timeout
  std::uint64_t evicted_request = 0;     ///< partial-line timeout
  std::uint64_t lines = 0;               ///< protocol lines processed
  std::uint64_t orphaned_replies = 0;    ///< decision after client left
};

struct ServeResult {
  std::uint64_t submissions = 0;  ///< `sub` lines seen (incl. replayed)
  std::uint64_t decisions = 0;    ///< decision records emitted
  std::uint64_t errors = 0;       ///< malformed/unknown lines answered
  std::uint64_t replayed = 0;     ///< journal records replayed at startup
  core::AdmissionStats stats;
  core::PlanCache::Stats cache;
};

/// The transport-independent protocol engine: parse, gate through the
/// admission controller, journal, reply.
class ServeSession {
 public:
  enum class ReplyKind {
    kDecision,  ///< final sda.admit.v1 verdict for `id`
    kError,     ///< sda.error.v1 for the line that was just fed
    kSummary,   ///< sda.serve.summary.v1 at finish()
  };
  struct Reply {
    ReplyKind kind = ReplyKind::kError;
    bool has_id = false;
    std::uint64_t id = 0;
    std::string line;  ///< full JSON line including trailing '\n'
  };

  explicit ServeSession(const ServeOptions& options);

  /// Opens (and replays, if it exists) the journal configured in
  /// ServeOptions.  Must be called before the first handle_line when a
  /// journal path is set.  Returns false with @p diag on failure.
  /// Without a journal path this is a no-op returning true.
  bool open_journal(std::string* diag);

  /// Feeds one protocol line (no trailing newline).  Replies — possibly
  /// none (a clean `done`), possibly several (pump resolutions for
  /// earlier-parked ids) — are appended to @p replies in emission order.
  void handle_line(std::string_view text, std::vector<Reply>& replies);

  /// End of stream / drain: resolves everything still parked, appends a
  /// journal checkpoint, and emits the summary record.  @p net, when
  /// non-null, adds the socket-transport block to the summary.
  void finish(std::vector<Reply>& replies, const ServeNetStats* net = nullptr);

  /// Timer hook for the socket loop: journal flush-interval enforcement.
  void on_tick();

  /// FNV-1a fingerprint of the recoverable session state: controller
  /// fingerprint plus live/pending id sets and the submission/decision
  /// counters.  Replaying a journal reproduces it exactly.
  std::uint64_t state_fingerprint() const;

  // The session is single-owner: exactly one thread (the stream driver,
  // the socket event loop, or the replay path) may call the methods
  // above.  owner_ is the compile-time expression of that contract —
  // every public entry point assumes it, every private helper and every
  // piece of protocol state requires it, so a second thread reaching
  // into the session shows up as a -Wthread-safety error, not a race.

  /// The limits this session parses with.  Transports that pre-parse
  /// lines (the socket server's decision-route peek) must use these,
  /// not defaults, so peek and session never diverge.
  const ProtocolLimits& limits() const noexcept { return options_.limits; }

  bool replay_truncated() const noexcept {
    util::RoleGuard own(owner_);
    return replay_truncated_;
  }
  const std::string& replay_diagnostic() const noexcept {
    util::RoleGuard own(owner_);
    return replay_diagnostic_;
  }
  const ServeResult& result() const noexcept {
    util::RoleGuard own(owner_);
    return result_;
  }
  const core::AdmissionController& controller() const noexcept {
    return controller_;
  }
  std::uint64_t journal_io_errors() const noexcept {
    return journal_.io_errors();
  }

 private:
  /// handle_line/state_fingerprint bodies, shared by the public wrappers
  /// and owner-held internal callers (journal replay, finish).
  void handle_line_impl(std::string_view text, std::vector<Reply>& replies)
      SDA_REQUIRES(owner_);
  std::uint64_t fingerprint_impl() const SDA_REQUIRES(owner_);
  void emit_decision(std::vector<Reply>& replies, std::uint64_t id,
                     const core::AdmissionOutcome& outcome)
      SDA_REQUIRES(owner_);
  void emit_error(std::vector<Reply>& replies, ProtocolErrorCode code,
                  bool has_id, std::uint64_t id, const std::string& message)
      SDA_REQUIRES(owner_);
  void emit_resolved(
      std::vector<Reply>& replies,
      const std::vector<std::pair<std::uint64_t, core::AdmissionOutcome>>&
          resolved) SDA_REQUIRES(owner_);
  void journal_line(std::string_view text) SDA_REQUIRES(owner_);

  /// Single-owner role (see the class comment block above).
  util::ThreadRole owner_;
  ServeOptions options_;
  core::AdmissionController controller_;
  JournalWriter journal_;
  double now_ SDA_GUARDED_BY(owner_) = 0.0;
  /// Suppress emission/journaling during replay.
  bool replaying_ SDA_GUARDED_BY(owner_) = false;
  /// Journal had a torn tail.
  bool replay_truncated_ SDA_GUARDED_BY(owner_) = false;
  /// Where/why replay stopped.
  std::string replay_diagnostic_ SDA_GUARDED_BY(owner_);
  /// Parked in the retry queue.
  std::set<std::uint64_t> pending_ SDA_GUARDED_BY(owner_);
  /// Admitted, not yet done.
  std::set<std::uint64_t> live_ SDA_GUARDED_BY(owner_);
  ServeResult result_ SDA_GUARDED_BY(owner_);
  // Latency accounting (only when measure_latency / decision deadline).
  std::vector<double> latency_samples_ns_ SDA_GUARDED_BY(owner_);
  double busy_seconds_ SDA_GUARDED_BY(owner_) = 0.0;
};

/// Runs the admission service over @p in until EOF, writing JSON lines
/// to @p out.  Every `sub` line is answered by exactly one decision
/// record (possibly later in the stream, when the submission was parked
/// in the retry queue; at the latest from the EOF flush).  The
/// deterministic harness: byte-identical output across reruns.
ServeResult serve_stream(std::istream& in, std::ostream& out,
                         const ServeOptions& options);

}  // namespace sda::exp
