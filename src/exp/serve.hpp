// The long-running admission front door behind `sda_run --serve`.
//
// serve_stream reads newline-delimited submissions from any istream (a
// pipe, a FIFO created with mkfifo, a file, a socket wrapped by nc) and
// emits one versioned `sda.admit.v1` JSON-lines decision per submission
// plus a final `sda.serve.summary.v1` record.  The protocol:
//
//   sub id=<u64> at=<time> deadline=<rel> tree=<notation to end of line>
//   done id=<u64> [at=<time>]
//   # comment — ignored, as are blank lines
//
// `at` is the submission's logical clock (monotonically non-decreasing;
// the stream owns time, serve never reads a wall clock), `deadline` is
// relative to `at`, and `tree` uses the task notation with bound nodes
// and demands ("[a@0:2 || b@1:1.5]").  `done` retires an admitted run's
// ledger reservations early (the run finished), which is also the
// moment parked submissions get retried.
//
// Decisions are a pure function of the input bytes and the admission
// config: no RNG, no wall clock, no iteration over unordered
// containers.  Running the same stream twice — or with the plan cache
// on vs. off — produces byte-identical output, which the fingerprint
// tests assert.  Wall-clock latency measurement is therefore opt-in
// (`measure_latency`) and only ever shows up in the summary record.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "src/core/admission.hpp"

namespace sda::exp {

struct ServeOptions {
  core::AdmissionConfig admission;
  /// Measure per-decision wall latency (steady_clock) and report
  /// count/p50/p90/p99/p99.9 plus sustained admissions/sec in the
  /// summary.  Off by default: timing fields are nondeterministic bytes.
  bool measure_latency = false;
};

struct ServeResult {
  std::uint64_t submissions = 0;  ///< `sub` lines seen
  std::uint64_t decisions = 0;    ///< decision records emitted
  std::uint64_t errors = 0;       ///< malformed lines answered with errors
  core::AdmissionStats stats;
  core::PlanCache::Stats cache;
};

/// Runs the admission service over @p in until EOF, writing JSON lines
/// to @p out.  Every `sub` line is answered by exactly one decision
/// record (possibly later in the stream, when the submission was parked
/// in the retry queue; at the latest from the EOF flush).
ServeResult serve_stream(std::istream& in, std::ostream& out,
                         const ServeOptions& options);

}  // namespace sda::exp
