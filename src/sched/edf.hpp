// Earliest-deadline-first ready queue (the paper's local scheduling policy).
//
// Tasks are ordered by *virtual* deadline; equal deadlines are served in
// arrival order.  The strategy layer manipulates virtual deadlines precisely
// to steer this ordering (UD / DIV-x / GF / EQF all reduce to "what deadline
// does EDF see").  Backed by an indexed 4-ary heap so abort-timer removals
// and preemption checks are O(log n) without scanning.
#pragma once

#include "src/sched/indexed_heap.hpp"
#include "src/sched/scheduler.hpp"

namespace sda::sched {

class EdfScheduler final : public Scheduler {
 public:
  void push(TaskPtr t) override;
  TaskPtr pop() override;
  const task::SimpleTask* peek() const override;
  TaskPtr remove(const task::SimpleTask& t) override;
  std::size_t size() const override { return queue_.size(); }
  std::string name() const override { return "EDF"; }

 private:
  struct ByDeadline {
    bool operator()(const TaskPtr& a, const TaskPtr& b) const noexcept {
      if (a->attrs.virtual_deadline != b->attrs.virtual_deadline) {
        return a->attrs.virtual_deadline < b->attrs.virtual_deadline;
      }
      return a->enqueue_seq < b->enqueue_seq;
    }
  };
  detail::IndexedTaskHeap<ByDeadline> queue_;
};

}  // namespace sda::sched
