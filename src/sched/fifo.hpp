// First-come-first-served ready queue.
//
// Deadline-oblivious baseline used by the substrate ablation
// (bench/ablation_scheduler_policy): under FIFO the SDA strategies cannot
// help, which isolates how much of the paper's improvement comes from nodes
// actually honoring deadlines.  Uses the shared indexed heap keyed by
// enqueue sequence alone, so abort-driven removals stop scanning the queue.
#pragma once

#include "src/sched/indexed_heap.hpp"
#include "src/sched/scheduler.hpp"

namespace sda::sched {

class FifoScheduler final : public Scheduler {
 public:
  void push(TaskPtr t) override;
  TaskPtr pop() override;
  const task::SimpleTask* peek() const override;
  TaskPtr remove(const task::SimpleTask& t) override;
  std::size_t size() const override { return queue_.size(); }
  std::string name() const override { return "FIFO"; }

 private:
  struct ByArrival {
    bool operator()(const TaskPtr& a, const TaskPtr& b) const noexcept {
      return a->enqueue_seq < b->enqueue_seq;
    }
  };
  detail::IndexedTaskHeap<ByArrival> queue_;
};

}  // namespace sda::sched
