// Overload-management (abortion) policies, paper Section 7.3.
//
// The paper distinguishes three regimes:
//   * no abortion (the baseline, Table 1),
//   * abortion by the *process manager* at the task's real deadline
//     (implemented in core::ProcessManager with engine timers), and
//   * abortion by the *local scheduler* when a task's virtual deadline
//     passes (implemented in sched::Node; this is the regime that breaks
//     DIV-x/GF unless subtasks are marked non-abortable).
#pragma once

namespace sda::sched {

enum class LocalAbortPolicy {
  /// The node keeps working on a task even after its deadline expires.
  kNone,
  /// The node aborts a queued or in-service task the moment its *virtual*
  /// deadline passes (tasks flagged non_abortable are exempt).
  kAbortOnVirtualDeadline,
};

inline const char* to_string(LocalAbortPolicy p) noexcept {
  switch (p) {
    case LocalAbortPolicy::kNone: return "none";
    case LocalAbortPolicy::kAbortOnVirtualDeadline: return "virtual-deadline";
  }
  return "?";
}

}  // namespace sda::sched
