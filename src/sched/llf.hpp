// Least-laxity-first ready queue (non-preemptive).
//
// Laxity = virtual_deadline - now - predicted_remaining_work.  For tasks
// sitting in a ready queue the `now` term is common to every candidate, so
// the non-preemptive LLF order reduces to the *static* key
// (virtual_deadline - pex): no clock access needed.  LLF folds execution
// demand into urgency, which EDF ignores — a natural third point in the
// substrate-ablation space alongside EDF and SPT.  Backed by the shared
// indexed heap for O(log n) targeted removal.
#pragma once

#include "src/sched/indexed_heap.hpp"
#include "src/sched/scheduler.hpp"

namespace sda::sched {

class LlfScheduler final : public Scheduler {
 public:
  void push(TaskPtr t) override;
  TaskPtr pop() override;
  const task::SimpleTask* peek() const override;
  TaskPtr remove(const task::SimpleTask& t) override;
  std::size_t size() const override { return queue_.size(); }
  std::string name() const override { return "LLF"; }

  /// The static ordering key: deadline minus predicted demand.
  static double laxity_key(const task::SimpleTask& t) noexcept {
    return t.attrs.virtual_deadline - t.attrs.pred_exec;
  }

 private:
  struct ByLaxity {
    bool operator()(const TaskPtr& a, const TaskPtr& b) const noexcept {
      const double ka = laxity_key(*a), kb = laxity_key(*b);
      if (ka != kb) return ka < kb;
      return a->enqueue_seq < b->enqueue_seq;
    }
  };
  detail::IndexedTaskHeap<ByLaxity> queue_;
};

}  // namespace sda::sched
