#include "src/sched/llf.hpp"

namespace sda::sched {

void LlfScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  // Ready queue: one entry per live task.
  // sda-lint: allow(UNBOUNDED_QUEUE) bounded upstream by the admission gate / workload horizon
  queue_.push(std::move(t));
}

TaskPtr LlfScheduler::pop() { return queue_.pop(); }

const task::SimpleTask* LlfScheduler::peek() const { return queue_.peek(); }

TaskPtr LlfScheduler::remove(const task::SimpleTask& t) {
  return queue_.remove(t);
}

}  // namespace sda::sched
