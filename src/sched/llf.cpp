#include "src/sched/llf.hpp"

namespace sda::sched {

void LlfScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  queue_.insert(std::move(t));
}

TaskPtr LlfScheduler::pop() {
  if (queue_.empty()) return nullptr;
  auto it = queue_.begin();
  TaskPtr t = *it;
  queue_.erase(it);
  return t;
}

const task::SimpleTask* LlfScheduler::peek() const {
  return queue_.empty() ? nullptr : queue_.begin()->get();
}

TaskPtr LlfScheduler::remove(const task::SimpleTask& t) {
  const TaskPtr key(std::shared_ptr<task::SimpleTask>{},
                    const_cast<task::SimpleTask*>(&t));
  auto it = queue_.find(key);
  if (it == queue_.end() || it->get() != &t) return nullptr;
  TaskPtr owned = *it;
  queue_.erase(it);
  return owned;
}

}  // namespace sda::sched
