#include "src/sched/llf.hpp"

namespace sda::sched {

void LlfScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  queue_.push(std::move(t));
}

TaskPtr LlfScheduler::pop() { return queue_.pop(); }

const task::SimpleTask* LlfScheduler::peek() const { return queue_.peek(); }

TaskPtr LlfScheduler::remove(const task::SimpleTask& t) {
  return queue_.remove(t);
}

}  // namespace sda::sched
