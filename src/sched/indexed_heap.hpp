// Indexed 4-ary min-heap over ready tasks.
//
// All four ready-queue policies (EDF, FIFO, SPT, LLF) need the same three
// operations fast: push, pop-min, and *remove an arbitrary queued task* —
// the last one driven by abort timers and the process manager's deadline
// enforcement, which used to pay an O(n) scan (FIFO) or a comparator
// round-trip through std::set's allocator-heavy node tree.  This heap
// stores TaskPtrs contiguously and maintains an intrusive back-link
// (SimpleTask::queue_pos) so removal locates its entry in O(1) and fixes
// the heap in O(log n); pushes are allocation-free once the vector has
// warmed up.  Singh's EDF-complexity argument (PAPERS.md) applies
// directly: the scheduler's data structure, not its policy, is the cost.
//
// @p Less must be a strict weak ordering whose ties are fully broken by
// SimpleTask::enqueue_seq (every policy comparator here ends with it), so
// the heap's pop order — and therefore the simulation — is deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/invariants.hpp"
#include "src/task/task.hpp"

namespace sda::sched::detail {

template <typename Less>
class IndexedTaskHeap {
 public:
  void push(task::TaskPtr t) {
    const std::size_t pos = heap_.size();
    t->queue_pos = static_cast<std::uint32_t>(pos);
    heap_.push_back(std::move(t));
    sift_up(pos);
    if (core::invariants::enabled()) oracle_after_mutation();
  }

  /// Removes and returns the minimum task; nullptr when empty.
  task::TaskPtr pop() {
    if (heap_.empty()) return nullptr;
    return remove_at(0);
  }

  /// The task pop() would return, without removing it; nullptr when empty.
  const task::SimpleTask* peek() const noexcept {
    return heap_.empty() ? nullptr : heap_.front().get();
  }

  /// Removes a specific queued task in O(log n) via its back-link.
  /// Returns the owning pointer, or nullptr when @p t is not queued here
  /// (the position check plus pointer comparison rejects tasks queued in
  /// a different heap or not queued at all).
  task::TaskPtr remove(const task::SimpleTask& t) {
    const std::uint32_t pos = t.queue_pos;
    if (pos == task::SimpleTask::kNotQueued || pos >= heap_.size() ||
        heap_[pos].get() != &t) {
      return nullptr;
    }
    return remove_at(pos);
  }

  std::size_t size() const noexcept { return heap_.size(); }

  /// SDA_VALIDATE oracle: verifies heap order and the queue_pos
  /// back-link identity (heap_[i]->queue_pos == i) over the whole
  /// structure — the two properties the O(log n) remove/abort path must
  /// preserve.  O(n); aborts with a structured dump on violation.
  /// Mutations invoke it on a deterministic cadence when the oracle is
  /// enabled; tests may call it directly.
  void validate() const {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i] == nullptr) {
        core::invariants::fail(
            "task-heap-null-entry",
            core::invariants::Dump().integer("index",
                                             static_cast<long long>(i)));
      }
      if (heap_[i]->queue_pos != i) {
        core::invariants::fail(
            "task-heap-queue-pos-identity",
            core::invariants::Dump()
                .integer("index", static_cast<long long>(i))
                .integer("queue_pos",
                         static_cast<long long>(heap_[i]->queue_pos))
                .integer("task_id", static_cast<long long>(heap_[i]->id))
                .integer("size", static_cast<long long>(heap_.size())));
      }
      if (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (less_(heap_[i], heap_[parent])) {
          core::invariants::fail(
              "task-heap-order",
              core::invariants::Dump()
                  .integer("index", static_cast<long long>(i))
                  .integer("task_id", static_cast<long long>(heap_[i]->id))
                  .integer("parent_task_id",
                           static_cast<long long>(heap_[parent]->id))
                  .integer("size", static_cast<long long>(heap_.size())));
        }
      }
    }
  }

 private:
  void oracle_after_mutation() {
    // Same cadence rationale as EventQueue::oracle_after_mutation():
    // every mutation while small, every 64th when an overloaded queue
    // grows long, keeping validation from going quadratic.
    ++mutations_;
    if (heap_.size() <= 64 || (mutations_ & 63) == 0) validate();
  }

  task::TaskPtr remove_at(std::size_t pos) {
    task::TaskPtr out = std::move(heap_[pos]);
    out->queue_pos = task::SimpleTask::kNotQueued;
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
      heap_[pos] = std::move(heap_[last]);
      heap_[pos]->queue_pos = static_cast<std::uint32_t>(pos);
      heap_.pop_back();
      sift_down(pos);
      sift_up(pos);
    } else {
      heap_.pop_back();
    }
    if (core::invariants::enabled()) oracle_after_mutation();
    return out;
  }

  void sift_up(std::size_t pos) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 4;
      if (!less_(heap_[pos], heap_[parent])) break;
      swap_entries(pos, parent);
      pos = parent;
    }
  }

  void sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * pos + 1;
      if (first >= n) break;
      std::size_t best = pos;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first; c < end; ++c) {
        if (less_(heap_[c], heap_[best])) best = c;
      }
      if (best == pos) break;
      swap_entries(pos, best);
      pos = best;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    heap_[a].swap(heap_[b]);
    heap_[a]->queue_pos = static_cast<std::uint32_t>(a);
    heap_[b]->queue_pos = static_cast<std::uint32_t>(b);
  }

  std::vector<task::TaskPtr> heap_;
  Less less_;
  std::uint64_t mutations_ = 0;  ///< drives the SDA_VALIDATE cadence
};

}  // namespace sda::sched::detail
