// Indexed 4-ary min-heap over ready tasks.
//
// All four ready-queue policies (EDF, FIFO, SPT, LLF) need the same three
// operations fast: push, pop-min, and *remove an arbitrary queued task* —
// the last one driven by abort timers and the process manager's deadline
// enforcement, which used to pay an O(n) scan (FIFO) or a comparator
// round-trip through std::set's allocator-heavy node tree.  This heap
// stores TaskPtrs contiguously and maintains an intrusive back-link
// (SimpleTask::queue_pos) so removal locates its entry in O(1) and fixes
// the heap in O(log n); pushes are allocation-free once the vector has
// warmed up.  Singh's EDF-complexity argument (PAPERS.md) applies
// directly: the scheduler's data structure, not its policy, is the cost.
//
// @p Less must be a strict weak ordering whose ties are fully broken by
// SimpleTask::enqueue_seq (every policy comparator here ends with it), so
// the heap's pop order — and therefore the simulation — is deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/task/task.hpp"

namespace sda::sched::detail {

template <typename Less>
class IndexedTaskHeap {
 public:
  void push(task::TaskPtr t) {
    const std::size_t pos = heap_.size();
    t->queue_pos = static_cast<std::uint32_t>(pos);
    heap_.push_back(std::move(t));
    sift_up(pos);
  }

  /// Removes and returns the minimum task; nullptr when empty.
  task::TaskPtr pop() {
    if (heap_.empty()) return nullptr;
    return remove_at(0);
  }

  /// The task pop() would return, without removing it; nullptr when empty.
  const task::SimpleTask* peek() const noexcept {
    return heap_.empty() ? nullptr : heap_.front().get();
  }

  /// Removes a specific queued task in O(log n) via its back-link.
  /// Returns the owning pointer, or nullptr when @p t is not queued here
  /// (the position check plus pointer comparison rejects tasks queued in
  /// a different heap or not queued at all).
  task::TaskPtr remove(const task::SimpleTask& t) {
    const std::uint32_t pos = t.queue_pos;
    if (pos == task::SimpleTask::kNotQueued || pos >= heap_.size() ||
        heap_[pos].get() != &t) {
      return nullptr;
    }
    return remove_at(pos);
  }

  std::size_t size() const noexcept { return heap_.size(); }

 private:
  task::TaskPtr remove_at(std::size_t pos) {
    task::TaskPtr out = std::move(heap_[pos]);
    out->queue_pos = task::SimpleTask::kNotQueued;
    const std::size_t last = heap_.size() - 1;
    if (pos != last) {
      heap_[pos] = std::move(heap_[last]);
      heap_[pos]->queue_pos = static_cast<std::uint32_t>(pos);
      heap_.pop_back();
      sift_down(pos);
      sift_up(pos);
    } else {
      heap_.pop_back();
    }
    return out;
  }

  void sift_up(std::size_t pos) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 4;
      if (!less_(heap_[pos], heap_[parent])) break;
      swap_entries(pos, parent);
      pos = parent;
    }
  }

  void sift_down(std::size_t pos) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * pos + 1;
      if (first >= n) break;
      std::size_t best = pos;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first; c < end; ++c) {
        if (less_(heap_[c], heap_[best])) best = c;
      }
      if (best == pos) break;
      swap_entries(pos, best);
      pos = best;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    heap_[a].swap(heap_[b]);
    heap_[a]->queue_pos = static_cast<std::uint32_t>(a);
    heap_[b]->queue_pos = static_cast<std::uint32_t>(b);
  }

  std::vector<task::TaskPtr> heap_;
  Less less_;
};

}  // namespace sda::sched::detail
