// Shortest-predicted-processing-time ready queue.
//
// Orders by pex (falling back to nothing else: locals carry pex == ex).
// SPT minimizes mean response time but ignores deadlines entirely; it is
// the second substrate ablation policy.  Backed by the same indexed heap
// as EDF so targeted removals never scan.
#pragma once

#include "src/sched/indexed_heap.hpp"
#include "src/sched/scheduler.hpp"

namespace sda::sched {

class SptScheduler final : public Scheduler {
 public:
  void push(TaskPtr t) override;
  TaskPtr pop() override;
  const task::SimpleTask* peek() const override;
  TaskPtr remove(const task::SimpleTask& t) override;
  std::size_t size() const override { return queue_.size(); }
  std::string name() const override { return "SPT"; }

 private:
  struct ByPex {
    bool operator()(const TaskPtr& a, const TaskPtr& b) const noexcept {
      if (a->attrs.pred_exec != b->attrs.pred_exec) {
        return a->attrs.pred_exec < b->attrs.pred_exec;
      }
      return a->enqueue_seq < b->enqueue_seq;
    }
  };
  detail::IndexedTaskHeap<ByPex> queue_;
};

}  // namespace sda::sched
