// Local real-time scheduling policies.
//
// Each node owns one Scheduler: a ready queue that decides which waiting
// task is served next.  The paper's nodes use earliest-deadline-first on the
// (virtual) deadline; FIFO and shortest-predicted-time are provided as
// substrate ablations.  Schedulers are policy only — timing, service, and
// abortion mechanics live in sched::Node.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/task/task.hpp"

namespace sda::sched {

using task::TaskPtr;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Adds a task to the ready queue.  Implementations must stamp
  /// SimpleTask::enqueue_seq (via next_seq()) so ties are FIFO-stable.
  virtual void push(TaskPtr t) = 0;

  /// Removes and returns the task that should be served next.
  /// Returns nullptr when empty.
  virtual TaskPtr pop() = 0;

  /// The task pop() would return, without removing it; nullptr when empty.
  virtual const task::SimpleTask* peek() const = 0;

  /// Removes a specific queued task (used by abortion). Returns the owning
  /// pointer when found, nullptr when the task is not queued here.
  virtual TaskPtr remove(const task::SimpleTask& t) = 0;

  /// Number of queued tasks.
  virtual std::size_t size() const = 0;

  bool empty() const { return size() == 0; }

  /// Policy name for reports ("EDF", "FIFO", ...).
  virtual std::string name() const = 0;

 protected:
  /// Monotone per-scheduler counter for FIFO tie-breaking.
  std::uint64_t next_seq() noexcept { return ++seq_; }

 private:
  std::uint64_t seq_ = 0;
};

/// Factory by policy name ("edf", "fifo", "spt"); throws on unknown names.
std::unique_ptr<Scheduler> make_scheduler(const std::string& policy);

}  // namespace sda::sched
