#include "src/sched/node.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace sda::sched {

using task::TaskState;

Node::Node(sim::Engine& engine, std::unique_ptr<Scheduler> scheduler,
           Config config)
    : engine_(engine), scheduler_(std::move(scheduler)), config_(config) {
  if (!scheduler_) throw std::invalid_argument("Node needs a scheduler");
  if (!(config_.speed > 0.0)) {
    throw std::invalid_argument("Node speed must be positive");
  }
}

void Node::note_population_change(int delta) {
  const sim::Time now = engine_.now();
  pop_area_ += static_cast<sim::Time>(population_) * (now - pop_last_change_);
  pop_last_change_ = now;
  population_ += delta;
  assert(population_ >= 0);
}

void Node::submit(TaskPtr t) {
  if (!t) throw std::invalid_argument("Node::submit: null task");
  if (t->exec_node != config_.index) {
    throw std::logic_error("Node::submit: task destined for another node");
  }
  t->state = TaskState::kQueued;
  t->submitted_at = engine_.now();
  t->remaining = t->attrs.exec_time;
  note_population_change(+1);
  ++submissions_;
  // +1: the submitted task is about to join the ready queue (or the
  // server), so count it in the depth observed at this instant.
  const std::size_t depth = scheduler_->size() + 1;
  if (depth > queue_high_water_) queue_high_water_ = depth;
  if ((submissions_ & 63) == 0) {  // the oracle's deterministic cadence
    ++depth_samples_;
    depth_sample_sum_ += static_cast<double>(depth);
  }
  notify(Event::kSubmitted, *t);

  if (config_.abort_policy == LocalAbortPolicy::kAbortOnVirtualDeadline &&
      !t->non_abortable) {
    if (t->attrs.virtual_deadline <= engine_.now()) {
      // Already expired on arrival: abort without consuming any service.
      local_abort(t);
      return;
    }
    arm_abort_timer(t);
  }

  if (config_.preemptive && current_ &&
      t->attrs.virtual_deadline < current_->attrs.virtual_deadline) {
    preempt_current();
  }
  scheduler_->push(std::move(t));
  try_start();
}

void Node::try_start() {
  if (current_ || !up_) return;
  TaskPtr next = scheduler_->pop();
  if (!next) return;
  start_service(std::move(next));
}

void Node::start_service(TaskPtr t) {
  assert(!current_ && up_);
  current_ = std::move(t);
  current_->state = TaskState::kRunning;
  if (current_->started_at < 0.0) current_->started_at = engine_.now();
  ++current_->service_attempts;
  service_started_ = engine_.now();
  double duration = current_->remaining / config_.speed;
  bool will_fail = false;
  if (fault_hook_) {
    const ServiceFault f = fault_hook_(*current_, duration);
    if (f.extra_delay > 0.0) duration += f.extra_delay;
    if (f.fail_after >= 0.0 && f.fail_after < duration) {
      duration = f.fail_after;
      will_fail = true;
    }
  }
  completion_event_ = engine_.in(duration, [this, will_fail] {
    will_fail ? fail_service() : finish_service();
  });
  notify(Event::kStarted, *current_);
}

void Node::finish_service() {
  assert(current_);
  TaskPtr done = std::move(current_);
  current_ = nullptr;
  busy_accum_ += engine_.now() - service_started_;
  done->remaining = 0.0;
  done->state = TaskState::kCompleted;
  done->finished_at = engine_.now();
  disarm_abort_timer(*done);
  note_population_change(-1);
  ++completed_;
  notify(Event::kCompleted, *done);
  if (on_complete_) on_complete_(done);
  try_start();
}

void Node::fail_service() {
  assert(current_);
  TaskPtr victim = std::move(current_);
  current_ = nullptr;
  const sim::Time elapsed = engine_.now() - service_started_;
  busy_accum_ += elapsed;  // the work invested in the failed attempt is lost
  fail_task(std::move(victim));
  try_start();
}

void Node::fail_task(TaskPtr t) {
  disarm_abort_timer(*t);
  t->state = TaskState::kFailed;
  t->finished_at = engine_.now();
  note_population_change(-1);
  ++failed_;
  notify(Event::kFailed, *t);
  if (on_failure_) on_failure_(t);
}

void Node::crash(bool discard_queue) {
  if (!up_) return;
  up_ = false;
  ++crashes_;
  if (current_) {
    engine_.cancel(completion_event_);
    TaskPtr victim = std::move(current_);
    current_ = nullptr;
    busy_accum_ += engine_.now() - service_started_;
    fail_task(std::move(victim));
  }
  if (discard_queue) {
    // Snapshot first: a failure handler may resubmit a victim right back to
    // this (down) node, and that retry belongs to the post-crash queue, not
    // to the set being discarded.
    std::vector<TaskPtr> victims;
    while (TaskPtr queued = scheduler_->pop()) {
      victims.push_back(std::move(queued));
    }
    for (TaskPtr& queued : victims) fail_task(std::move(queued));
  }
}

void Node::recover() {
  if (up_) return;
  up_ = true;
  try_start();
}

void Node::preempt_current() {
  assert(current_);
  engine_.cancel(completion_event_);
  const sim::Time elapsed = engine_.now() - service_started_;
  busy_accum_ += elapsed;
  current_->remaining -= elapsed * config_.speed;
  if (current_->remaining < 0.0) current_->remaining = 0.0;
  current_->state = TaskState::kQueued;
  ++preemptions_;
  notify(Event::kPreempted, *current_);
  scheduler_->push(std::move(current_));
  current_ = nullptr;
}

void Node::arm_abort_timer(const TaskPtr& t) {
  // Capture a weak_ptr: the timer must not keep an otherwise-finished task
  // alive, and must do nothing if the task already left the node.
  std::weak_ptr<task::SimpleTask> weak = t;
  ++abort_timers_armed_;
  abort_timers_[t->id] =
      engine_.at(t->attrs.virtual_deadline, [this, weak] {
        TaskPtr locked = weak.lock();
        if (!locked) return;
        abort_timers_.erase(locked->id);
        if (locked->state == TaskState::kQueued ||
            locked->state == TaskState::kRunning) {
          local_abort(locked);
        }
      });
}

void Node::disarm_abort_timer(const task::SimpleTask& t) {
  auto it = abort_timers_.find(t.id);
  if (it == abort_timers_.end()) return;
  engine_.cancel(it->second);
  abort_timers_.erase(it);
  ++abort_timers_cancelled_;
}

void Node::local_abort(const TaskPtr& t) {
  if (t->state == TaskState::kRunning) {
    assert(current_.get() == t.get());
    engine_.cancel(completion_event_);
    const sim::Time elapsed = engine_.now() - service_started_;
    busy_accum_ += elapsed;  // work invested in the victim is wasted
    t->remaining -= elapsed * config_.speed;
    if (t->remaining < 0.0) t->remaining = 0.0;
    current_ = nullptr;
  } else if (t->state == TaskState::kQueued) {
    // Remove from the ready queue if it is there (it may not be, in the
    // expired-on-arrival path).
    scheduler_->remove(*t);
  }
  disarm_abort_timer(*t);
  t->state = TaskState::kAborted;
  t->finished_at = engine_.now();
  note_population_change(-1);
  ++aborted_locally_;
  notify(Event::kAborted, *t);
  if (on_local_abort_) on_local_abort_(t);
  try_start();
}

bool Node::abort(const task::SimpleTask& t) {
  if (current_ && current_.get() == &t) {
    TaskPtr victim = std::move(current_);
    current_ = nullptr;
    engine_.cancel(completion_event_);
    const sim::Time elapsed = engine_.now() - service_started_;
    busy_accum_ += elapsed;
    victim->remaining -= elapsed * config_.speed;
    if (victim->remaining < 0.0) victim->remaining = 0.0;
    disarm_abort_timer(*victim);
    victim->state = TaskState::kAborted;
    victim->finished_at = engine_.now();
    note_population_change(-1);
    ++aborted_externally_;
    notify(Event::kAborted, *victim);
    try_start();
    return true;
  }
  TaskPtr owned = scheduler_->remove(t);
  if (!owned) return false;
  disarm_abort_timer(*owned);
  owned->state = TaskState::kAborted;
  owned->finished_at = engine_.now();
  note_population_change(-1);
  ++aborted_externally_;
  notify(Event::kAborted, *owned);
  return true;
}

Node::PerfCounters Node::perf_counters() const noexcept {
  PerfCounters pc;
  pc.node = config_.index;
  pc.busy_time = busy_time();
  const sim::Time now = engine_.now();
  pc.idle_time = now > pc.busy_time ? now - pc.busy_time : 0.0;
  pc.utilization = utilization();
  pc.submissions = submissions_;
  pc.completed = completed_;
  pc.aborted_locally = aborted_locally_;
  pc.aborted_externally = aborted_externally_;
  pc.preemptions = preemptions_;
  pc.failed = failed_;
  pc.crashes = crashes_;
  pc.queue_high_water = queue_high_water_;
  pc.abort_timers_armed = abort_timers_armed_;
  pc.abort_timers_cancelled = abort_timers_cancelled_;
  pc.queue_depth_samples = depth_samples_;
  pc.queue_depth_mean =
      depth_samples_ > 0
          ? depth_sample_sum_ / static_cast<double>(depth_samples_)
          : 0.0;
  return pc;
}

sim::Time Node::busy_time() const noexcept {
  sim::Time total = busy_accum_;
  if (current_) total += engine_.now() - service_started_;
  return total;
}

double Node::utilization() const noexcept {
  const sim::Time now = engine_.now();
  return now > 0.0 ? busy_time() / now : 0.0;
}

double Node::mean_tasks_in_system() const noexcept {
  const sim::Time now = engine_.now();
  if (now <= 0.0) return 0.0;
  const sim::Time area =
      pop_area_ +
      static_cast<sim::Time>(population_) * (now - pop_last_change_);
  return area / now;
}

}  // namespace sda::sched
