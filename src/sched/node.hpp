// A processing node: single server + ready queue + independent scheduler.
//
// This models one system component (database, expert system, a network
// link, ...) from the paper's Figure 2.  Nodes are fully independent: the
// only information a node acts on is the tasks submitted to it and their
// (virtual) deadline attributes — there is no cross-node coordination.
//
// Service is non-preemptive by default (the queue is consulted only when
// the server frees up); Config::preemptive enables preemptive-resume EDF
// for the substrate ablation.
//
// Fault injection (src/fault/): a node can crash() and later recover(),
// and an optional FaultHook lets the injector fail individual service
// attempts partway (transient failures, message loss) or stretch them
// (link jitter).  With no hook installed and no crashes scheduled, the
// node's behavior — including its event and RNG footprint — is exactly
// the fail-free model.
//
// Lane affinity (sharded execution, DESIGN.md §4c): a Node is not
// thread-safe and never needs to be.  Under the time-window fabric, node
// i plus everything that touches it synchronously — its engine events,
// local source, fault hooks, abort timers, handlers — lives on lane i,
// which is owned by exactly one shard thread.  Cross-lane parties (the
// process manager) interact with a node only through fabric messages
// executed on its lane, and observe its status only through the static
// NodeStatusBoard, never by calling into the node from another shard.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/sched/abort_policy.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/engine.hpp"
#include "src/util/unique_fn.hpp"

namespace sda::sched {

class Node {
 public:
  struct Config {
    int index = 0;  ///< node identity (for task placement and reports)
    LocalAbortPolicy abort_policy = LocalAbortPolicy::kNone;
    bool preemptive = false;  ///< preemptive-resume service (ablation)
    /// Relative processing speed: a task with remaining demand r occupies
    /// the server for r/speed time units.  1.0 = the paper's homogeneous
    /// system; the heterogeneous-nodes ablation varies this per node.
    double speed = 1.0;
  };

  /// Called when a task finishes service (state kCompleted).
  using CompletionHandler = util::UniqueFn<void(const TaskPtr&)>;
  /// Called when the *local* abort policy kills a task (state kAborted).
  /// Externally requested aborts (Node::abort) do not trigger this.
  using AbortHandler = util::UniqueFn<void(const TaskPtr&)>;
  /// Called when a fault kills a task (state kFailed): a transient
  /// service failure from the fault hook, or a node crash.
  using FailureHandler = util::UniqueFn<void(const TaskPtr&)>;

  /// Fault-injection verdict for one service attempt (see set_fault_hook).
  struct ServiceFault {
    /// Extra wall time added to this service leg (e.g. link jitter); the
    /// server stays occupied for it but no demand is consumed.
    double extra_delay = 0.0;
    /// Wall-time offset into the (delay-extended) leg at which the attempt
    /// fails, wasting the work done; negative = the attempt completes.
    double fail_after = -1.0;
  };
  /// Consulted once per service start with the task and the nominal leg
  /// duration (remaining/speed).  Unset = fault-free (zero overhead).
  using FaultHook =
      util::UniqueFn<ServiceFault(const task::SimpleTask&, double)>;

  /// Fine-grained lifecycle notifications for tracing/instrumentation.
  enum class Event : std::uint8_t {
    kSubmitted,
    kStarted,
    kPreempted,
    kCompleted,
    kAborted,  ///< local-policy or external abort
    kFailed,   ///< killed by a fault (transient failure or node crash)
  };
  using Observer = util::UniqueFn<void(Event, const task::SimpleTask&)>;

  Node(sim::Engine& engine, std::unique_ptr<Scheduler> scheduler,
       Config config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int index() const noexcept { return config_.index; }
  const Scheduler& scheduler() const noexcept { return *scheduler_; }
  const Config& config() const noexcept { return config_; }

  void set_completion_handler(CompletionHandler h) { on_complete_ = std::move(h); }
  void set_abort_handler(AbortHandler h) { on_local_abort_ = std::move(h); }
  void set_failure_handler(FailureHandler h) { on_failure_ = std::move(h); }

  /// Installs a lifecycle observer (nullptr-able). Zero overhead when unset.
  void set_observer(Observer o) { observer_ = std::move(o); }

  /// Installs the fault-injection hook (nullptr-able).  With no hook the
  /// node is fail-free and behaves exactly as before.
  void set_fault_hook(FaultHook h) { fault_hook_ = std::move(h); }

  /// Accepts a task for execution.  Requires t->exec_node == index().
  /// The node takes shared ownership until completion or abort.
  void submit(TaskPtr t);

  /// Externally aborts a queued or in-service task (used by the process
  /// manager's real-deadline timers).  Marks it kAborted and releases the
  /// server if it was running.  Returns false when the task is not here
  /// (already finished or never submitted).
  bool abort(const task::SimpleTask& t);

  /// Task currently in service; nullptr when idle.
  const task::SimpleTask* in_service() const noexcept {
    return current_.get();
  }

  std::size_t queue_length() const noexcept { return scheduler_->size(); }

  // --- crash / recovery -------------------------------------------------
  /// True while the node is operational (the initial state).
  bool is_up() const noexcept { return up_; }

  /// Takes the node down.  The in-service task (if any) fails — its work
  /// is lost — and, when @p discard_queue is set, every queued task fails
  /// too; otherwise the queue is frozen until recover().  Tasks submitted
  /// while down are queued but not served.  No-op when already down.
  void crash(bool discard_queue);

  /// Brings the node back up and resumes service. No-op when already up.
  void recover();

  // --- statistics -------------------------------------------------------
  /// Always-on lightweight perf counters, snapshotted into RunResult at
  /// the end of every replication.  All fields are O(1) increments or max
  /// updates on paths the node already touches — no events are scheduled
  /// and no RNG is drawn, so counters can never perturb a run's
  /// determinism fingerprint.  Queue-depth mean is *sampled* on the same
  /// deterministic cadence as the SDA_VALIDATE oracle (every 64th
  /// submission) rather than time-weighted, keeping the hot path to one
  /// mask-and-branch.
  struct PerfCounters {
    int node = -1;
    double busy_time = 0.0;
    double idle_time = 0.0;   ///< elapsed - busy at snapshot time
    double utilization = 0.0;
    std::uint64_t submissions = 0;
    std::uint64_t completed = 0;
    std::uint64_t aborted_locally = 0;
    std::uint64_t aborted_externally = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t failed = 0;
    std::uint64_t crashes = 0;
    std::size_t queue_high_water = 0;  ///< max ready-queue length observed
    /// Abort-timer churn: timers armed / cancelled before firing.  High
    /// churn means the local-abort policy is mostly paying bookkeeping for
    /// tasks that finish in time.
    std::uint64_t abort_timers_armed = 0;
    std::uint64_t abort_timers_cancelled = 0;
    /// Sampled queue-depth statistics (every 64th submission).
    std::uint64_t queue_depth_samples = 0;
    double queue_depth_mean = 0.0;
  };

  /// Snapshot of the node's perf counters at the current simulation time.
  PerfCounters perf_counters() const noexcept;

  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t aborted_locally() const noexcept { return aborted_locally_; }
  std::uint64_t aborted_externally() const noexcept {
    return aborted_externally_;
  }
  std::uint64_t preemptions() const noexcept { return preemptions_; }
  std::uint64_t failed() const noexcept { return failed_; }
  std::uint64_t crashes() const noexcept { return crashes_; }

  /// Total time the server has been busy (including work later aborted).
  sim::Time busy_time() const noexcept;

  /// busy_time / elapsed — the node's utilization so far.
  double utilization() const noexcept;

  /// Time-average number of tasks at the node (queue + in service);
  /// used by the Little's-law validation tests.
  double mean_tasks_in_system() const noexcept;

 private:
  void try_start();
  void start_service(TaskPtr t);
  void finish_service();
  void fail_service();
  void fail_task(TaskPtr t);
  void preempt_current();
  void local_abort(const TaskPtr& t);
  void arm_abort_timer(const TaskPtr& t);
  void disarm_abort_timer(const task::SimpleTask& t);
  void note_population_change(int delta);

  sim::Engine& engine_;
  std::unique_ptr<Scheduler> scheduler_;
  Config config_;

  TaskPtr current_;                 ///< task in service, if any
  sim::Time service_started_ = 0.0; ///< when the current service leg began
  sim::EventId completion_event_;
  bool up_ = true;                  ///< false between crash() and recover()

  /// Local-abort timers, keyed by task id.
  std::unordered_map<std::uint64_t, sim::EventId> abort_timers_;

  CompletionHandler on_complete_;
  AbortHandler on_local_abort_;
  FailureHandler on_failure_;
  Observer observer_;
  FaultHook fault_hook_;

  void notify(Event e, const task::SimpleTask& t) {
    if (observer_) observer_(e, t);
  }

  std::uint64_t completed_ = 0;
  std::uint64_t aborted_locally_ = 0;
  std::uint64_t aborted_externally_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t crashes_ = 0;
  sim::Time busy_accum_ = 0.0;

  // Perf-counter bookkeeping (see PerfCounters).
  std::uint64_t submissions_ = 0;
  std::size_t queue_high_water_ = 0;
  std::uint64_t abort_timers_armed_ = 0;
  std::uint64_t abort_timers_cancelled_ = 0;
  std::uint64_t depth_samples_ = 0;
  double depth_sample_sum_ = 0.0;

  // Time-weighted population accounting for Little's law.
  int population_ = 0;
  sim::Time pop_area_ = 0.0;
  sim::Time pop_last_change_ = 0.0;
};

}  // namespace sda::sched
