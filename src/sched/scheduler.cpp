#include "src/sched/scheduler.hpp"

#include <stdexcept>

#include "src/sched/edf.hpp"
#include "src/sched/fifo.hpp"
#include "src/sched/llf.hpp"
#include "src/sched/spt.hpp"

namespace sda::sched {

std::unique_ptr<Scheduler> make_scheduler(const std::string& policy) {
  if (policy == "edf" || policy == "EDF") {
    return std::make_unique<EdfScheduler>();
  }
  if (policy == "fifo" || policy == "FIFO") {
    return std::make_unique<FifoScheduler>();
  }
  if (policy == "spt" || policy == "SPT") {
    return std::make_unique<SptScheduler>();
  }
  if (policy == "llf" || policy == "LLF") {
    return std::make_unique<LlfScheduler>();
  }
  throw std::invalid_argument("unknown scheduling policy: " + policy);
}

}  // namespace sda::sched
