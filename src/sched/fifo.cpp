#include "src/sched/fifo.hpp"

namespace sda::sched {

void FifoScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  // Ready queue: one entry per live task.
  // sda-lint: allow(UNBOUNDED_QUEUE) bounded upstream by the admission gate / workload horizon
  queue_.push(std::move(t));
}

TaskPtr FifoScheduler::pop() { return queue_.pop(); }

const task::SimpleTask* FifoScheduler::peek() const { return queue_.peek(); }

TaskPtr FifoScheduler::remove(const task::SimpleTask& t) {
  return queue_.remove(t);
}

}  // namespace sda::sched
