#include "src/sched/fifo.hpp"

#include <algorithm>

namespace sda::sched {

void FifoScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  queue_.push_back(std::move(t));
}

TaskPtr FifoScheduler::pop() {
  if (queue_.empty()) return nullptr;
  TaskPtr t = std::move(queue_.front());
  queue_.pop_front();
  return t;
}

const task::SimpleTask* FifoScheduler::peek() const {
  return queue_.empty() ? nullptr : queue_.front().get();
}

TaskPtr FifoScheduler::remove(const task::SimpleTask& t) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const TaskPtr& p) { return p.get() == &t; });
  if (it == queue_.end()) return nullptr;
  TaskPtr owned = std::move(*it);
  queue_.erase(it);
  return owned;
}

}  // namespace sda::sched
