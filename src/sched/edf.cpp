#include "src/sched/edf.hpp"

namespace sda::sched {

void EdfScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  // Ready queue: one entry per live task.
  // sda-lint: allow(UNBOUNDED_QUEUE) bounded upstream by the admission gate / workload horizon
  queue_.push(std::move(t));
}

TaskPtr EdfScheduler::pop() { return queue_.pop(); }

const task::SimpleTask* EdfScheduler::peek() const { return queue_.peek(); }

TaskPtr EdfScheduler::remove(const task::SimpleTask& t) {
  return queue_.remove(t);
}

}  // namespace sda::sched
