#include "src/sched/edf.hpp"

namespace sda::sched {

void EdfScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  queue_.insert(std::move(t));
}

TaskPtr EdfScheduler::pop() {
  if (queue_.empty()) return nullptr;
  auto it = queue_.begin();
  TaskPtr t = *it;
  queue_.erase(it);
  return t;
}

const task::SimpleTask* EdfScheduler::peek() const {
  return queue_.empty() ? nullptr : queue_.begin()->get();
}

TaskPtr EdfScheduler::remove(const task::SimpleTask& t) {
  // The comparator only reads (virtual_deadline, enqueue_seq), so a
  // non-owning aliasing shared_ptr to t is a valid lookup key.
  const TaskPtr key(std::shared_ptr<task::SimpleTask>{},
                    const_cast<task::SimpleTask*>(&t));
  auto it = queue_.find(key);
  if (it == queue_.end() || it->get() != &t) return nullptr;
  TaskPtr owned = *it;
  queue_.erase(it);
  return owned;
}

}  // namespace sda::sched
