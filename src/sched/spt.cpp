#include "src/sched/spt.hpp"

namespace sda::sched {

void SptScheduler::push(TaskPtr t) {
  t->enqueue_seq = next_seq();
  // Ready queue: one entry per live task.
  // sda-lint: allow(UNBOUNDED_QUEUE) bounded upstream by the admission gate / workload horizon
  queue_.push(std::move(t));
}

TaskPtr SptScheduler::pop() { return queue_.pop(); }

const task::SimpleTask* SptScheduler::peek() const { return queue_.peek(); }

TaskPtr SptScheduler::remove(const task::SimpleTask& t) {
  return queue_.remove(t);
}

}  // namespace sda::sched
